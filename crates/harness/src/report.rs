//! Plain-text table rendering and CSV/JSON dumps for experiment output.

use std::io::Write as _;
use std::path::Path;

/// A rendered experiment artifact: a titled table of string cells.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table {
    /// Title printed above the table (and used for file names).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row must be `headers.len()` long.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Write a CSV file next to the experiment outputs.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let name = self
            .title
            .to_lowercase()
            .replace(|c: char| !c.is_alphanumeric(), "_");
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Format MOPS with sensible precision.
pub fn mops(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a ratio like "6.8x".
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["range", "mops"]);
        t.row(vec!["10K".into(), "65.7".into()]);
        t.row(vec!["100M".into(), "3.2".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("range"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "aligned rows");
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("Fig 5.3 (a)", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("gfsl_report_test");
        let path = t.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("fig_5_3"));
    }

    #[test]
    fn formatters() {
        assert_eq!(mops(123.4), "123");
        assert_eq!(mops(65.71), "65.7");
        assert_eq!(mops(3.234), "3.23");
        assert_eq!(ratio(6.8123), "6.81x");
        assert_eq!(pct(0.488), "48.8%");
    }
}
