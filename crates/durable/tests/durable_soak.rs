//! Kill-restart chaos soak: the durability contract end to end, for every
//! crash point in the WAL/checkpoint protocol.
//!
//! For each (crash point × seed) cell, a seeded workload runs against a
//! [`DurableGfsl`] whose failpoint hook routes to the chaos controller;
//! the controller kills the process-under-test (an injected panic caught
//! at the op boundary) at the seeded occurrence of the target point —
//! mid-append with a genuinely torn record on disk, pre-fsync, mid
//! checkpoint page stream, pre manifest rename, or mid WAL prune. The
//! engine is then dropped (volatile state dies; files persist, exactly
//! what process death leaves) and reopened through full recovery. The
//! cell passes only if
//!
//! 1. recovery succeeds and the rebuilt structure validates clean,
//! 2. zero acknowledged writes are lost and every op that was in its
//!    commit window either fully happened or not at all — a per-key
//!    linearizability search over the **stitched cross-restart history**
//!    (pre-crash ops, the crashed op as `InsertMaybe`/`RemoveMaybe`,
//!    post-recovery ops, final sequential gets pinning the end state),
//! 3. a second restart after more acknowledged writes recovers those too.
//!
//! Seeds per point come from `GFSL_DURABLE_SOAK_SEEDS` (default 4; CI
//! runs 16) and `GFSL_DURABLE_SOAK_STATS=<path>` dumps per-cell recovery
//! statistics for the CI artifact.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use gfsl::chaos::{ChaosController, ChaosOptions, DURABILITY_CRASH_POINTS};
use gfsl::history::{check_linearizable, HistoryClock, OpAction, Recorder};
use gfsl::{CrashPoint, GfslParams, TeamSize};
use gfsl_durable::{destroy, DurabilityContract, DurableConfig, DurableGfsl, Failpoints};
use gfsl_rng::SplitMix64;

const KEY_SPACE: u32 = 110;
const OPS: usize = 120;
const OPS_PER_CKPT: usize = 20;
const POST_RECOVERY_OPS: usize = 30;

/// Silence the default panic hook for injected kills; real assertion
/// failures still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.as_str()));
            let injected = msg.is_some_and(|m| m.starts_with("chaos: injected"));
            if !injected {
                prev(info);
            }
        }));
    });
}

fn soak_seeds() -> u64 {
    std::env::var("GFSL_DURABLE_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

#[derive(Debug, Default)]
struct CellStats {
    crashed: bool,
    replayed: u64,
    redundant_replays: u64,
    truncated_bytes: u64,
    checkpoint_seq: u64,
    checkpoint_fallbacks: u64,
    recovered_keys: u64,
}

/// One cell: seeded run, injected kill at `point`, restart, verification,
/// then a second restart to prove post-recovery writes are durable too.
fn soak_cell(point: CrashPoint, seed: u64) -> CellStats {
    quiet_injected_panics();
    let dir = std::env::temp_dir().join(format!(
        "gfsl_dsoak_{point:?}_{seed}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DurableConfig {
        contract: DurabilityContract::ALL[(seed % 3) as usize],
        seg_records: 8 + (seed % 9) as u32, // force rotation and pruning
        ckpt_keep: 2,
        params: GfslParams {
            team_size: TeamSize::Sixteen,
            pool_chunks: 1 << 12,
            ..Default::default()
        },
        ..DurableConfig::new(&dir)
    };

    // Prefill BEFORE arming the failpoints: these acks are unconditional.
    let mut eng = DurableGfsl::create(&cfg).unwrap();
    let initial: HashMap<u32, u32> = (2..KEY_SPACE).step_by(2).map(|k| (k, k)).collect();
    for (&k, &v) in &initial {
        assert!(eng.insert(k, v).unwrap());
    }

    let occurrence = 1 + seed % 3;
    let ctl = ChaosController::new(
        1, // the durable path is single-threaded: every turn grants
        ChaosOptions {
            panic_at: Some((point, occurrence)),
            max_stall_turns: 1,
            seed: seed ^ 0xD6E8_FEB8_6659_FD93,
            ..Default::default()
        },
    );
    eng.hook = Failpoints::Chaos(ctl.probe(0));

    let clock = HistoryClock::new();
    let mut rec = Recorder::new(&clock);
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37) ^ 0xA5A5);
    let mut stats = CellStats::default();

    // Phase 1: run until the injected kill (or to completion). Each op is
    // its own unwind boundary — a panic inside the commit window leaves
    // the files exactly as a dying process would.
    let mut eng = Some(eng);
    for i in 0..OPS {
        let e = eng.as_mut().unwrap();
        if i > 0 && i % OPS_PER_CKPT == 0 {
            if catch_unwind(AssertUnwindSafe(|| e.checkpoint().unwrap())).is_err() {
                stats.crashed = true; // no op in flight: nothing acked lost
                break;
            }
            continue;
        }
        let r = rng.next_u64();
        let key = (r % u64::from(KEY_SPACE) + 1) as u32;
        let value = (r >> 40) as u32 | 1;
        let inv = rec.invoke();
        if (r >> 32) % 3 < 2 {
            match catch_unwind(AssertUnwindSafe(|| e.insert(key, value))) {
                Ok(done) => {
                    let ok = done.expect("non-chaos insert failure");
                    rec.finish(key, OpAction::Insert { value, ok }, inv);
                }
                Err(_) => {
                    // Killed in the commit window: applied in memory (now
                    // dead) and possibly logged. The checker tries both.
                    rec.finish(key, OpAction::InsertMaybe { value }, inv);
                    stats.crashed = true;
                    break;
                }
            }
        } else {
            match catch_unwind(AssertUnwindSafe(|| e.remove(key))) {
                Ok(done) => {
                    let ok = done.expect("non-chaos remove failure");
                    rec.finish(key, OpAction::Remove { ok }, inv);
                }
                Err(_) => {
                    rec.finish(key, OpAction::RemoveMaybe, inv);
                    stats.crashed = true;
                    break;
                }
            }
        }
    }
    drop(eng); // process death: memory gone, files as the kill left them

    // Phase 2: restart. Recovery must repair or refuse — for injected
    // kills, always repair (nothing acknowledged can be missing).
    let (mut eng, report) = DurableGfsl::open(&cfg).unwrap_or_else(|e| {
        panic!("[{point:?} seed {seed}] recovery failed: {e}")
    });
    assert!(
        eng.list().validate().is_empty(),
        "[{point:?} seed {seed}] recovered structure must validate"
    );
    stats.replayed = report.replayed;
    stats.redundant_replays = report.redundant_replays;
    stats.truncated_bytes = report.truncated_bytes;
    stats.checkpoint_seq = report.checkpoint_seq.unwrap_or(0);
    stats.checkpoint_fallbacks = report.checkpoint_fallbacks.len() as u64;

    // Phase 3: keep writing on the same history clock, restart again, and
    // pin the final state with sequential gets — the stitched history must
    // linearize across both restarts.
    for _ in 0..POST_RECOVERY_OPS {
        let r = rng.next_u64();
        let key = (r % u64::from(KEY_SPACE) + 1) as u32;
        let value = (r >> 40) as u32 | 1;
        let inv = rec.invoke();
        if (r >> 32) % 3 < 2 {
            let ok = eng.insert(key, value).unwrap();
            rec.finish(key, OpAction::Insert { value, ok }, inv);
        } else {
            let ok = eng.remove(key).unwrap();
            rec.finish(key, OpAction::Remove { ok }, inv);
        }
    }
    drop(eng);
    let (mut eng, _) = DurableGfsl::open(&cfg).unwrap_or_else(|e| {
        panic!("[{point:?} seed {seed}] second recovery failed: {e}")
    });
    stats.recovered_keys = eng.list().len() as u64;

    let mut records = std::mem::take(&mut rec.records);
    {
        let mut rec = Recorder::new(&clock);
        for key in 1..=KEY_SPACE {
            let inv = rec.invoke();
            let found = eng.get(key).unwrap();
            rec.finish(key, OpAction::Get { found }, inv);
        }
        records.extend(rec.records);
    }
    if let Err(errors) = check_linearizable(&records, &initial) {
        panic!("[{point:?} seed {seed}] acknowledged writes lost or phantom: {errors:?}");
    }

    destroy(&dir).unwrap();
    stats
}

#[test]
fn kill_restart_soak_every_durability_crash_point() {
    let seeds = soak_seeds();
    let mut report =
        String::from("point,seed,crashed,replayed,redundant,truncated_bytes,ckpt_seq,fallbacks,keys\n");
    for &point in DURABILITY_CRASH_POINTS.iter() {
        let mut crashes_for_point = 0u64;
        for seed in 0..seeds {
            let s = soak_cell(point, seed);
            crashes_for_point += u64::from(s.crashed);
            report.push_str(&format!(
                "{point:?},{seed},{},{},{},{},{},{},{}\n",
                u8::from(s.crashed),
                s.replayed,
                s.redundant_replays,
                s.truncated_bytes,
                s.checkpoint_seq,
                s.checkpoint_fallbacks,
                s.recovered_keys
            ));
        }
        assert!(
            crashes_for_point > 0,
            "{point:?} never produced an injected kill in {seeds} seeds — \
             the soak is not exercising this window"
        );
    }
    if let Ok(path) = std::env::var("GFSL_DURABLE_SOAK_STATS") {
        std::fs::write(&path, &report).expect("write soak stats");
    }
}

/// The torn-tail window specifically: a kill mid-append must leave a
/// partial record that recovery truncates (not an error, not a lost ack).
#[test]
fn wal_append_kill_truncates_exactly_the_unacked_tail() {
    quiet_injected_panics();
    let dir = std::env::temp_dir().join(format!("gfsl_dsoak_torn_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DurableConfig {
        seg_records: 64,
        ..DurableConfig::new(&dir)
    };
    let mut eng = DurableGfsl::create(&cfg).unwrap();
    for k in 1..=40u32 {
        eng.insert(k, k).unwrap();
    }
    let ctl = ChaosController::new(
        1,
        ChaosOptions {
            panic_at: Some((CrashPoint::WalAppend, 1)),
            max_stall_turns: 1,
            ..Default::default()
        },
    );
    eng.hook = Failpoints::Chaos(ctl.probe(0));
    let mut eng = Some(eng);
    let killed = catch_unwind(AssertUnwindSafe(|| {
        eng.as_mut().unwrap().insert(1000, 7).unwrap()
    }))
    .is_err();
    assert!(killed, "WalAppend must fire on the first effective write");
    drop(eng);

    let (mut eng, report) = DurableGfsl::open(&cfg).unwrap();
    assert!(report.truncated_bytes > 0, "a torn record must be truncated");
    assert_eq!(report.recovered_keys, 40, "the 40 acked writes survive");
    assert_eq!(eng.get(1000).unwrap(), None, "the unacked write is gone");
    // The repaired log accepts new writes at the reclaimed LSN.
    assert!(eng.insert(1000, 8).unwrap());
    assert_eq!(eng.last_lsn(), 41);
    destroy(&dir).unwrap();
}
