//! Hot-path engine bench: the ballot kernel (scalar reference vs SWAR)
//! crossed with the traversal hint cache, on the three shapes the engine
//! work targets — hot-band batched gets (read-heavy, the hint cache's
//! case), steady-state locked writes, and reclamation churn.
//!
//! The authoritative grid with speedup ratios and reclaim counters is the
//! `hotpath` harness experiment (`repro --experiment hotpath`), which
//! emits `BENCH_hotpath.json`; this target tracks the same paths under
//! criterion's statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use gfsl::{BallotKernel, BatchOp, BatchReply, Gfsl, GfslParams, TeamSize};
use gfsl_workload::{Prefill, SplitMix64};

const RANGE: u32 = 200_000;
const BATCH: usize = 256;
/// Hot band for clustered reads: a few hundred bottom-level chunks.
const BAND: u32 = 8_192;

fn cfg_name(kernel: BallotKernel, hints: bool) -> String {
    let k = match kernel {
        BallotKernel::Scalar => "scalar",
        BallotKernel::Swar => "swar",
    };
    if hints {
        format!("{k}_hints")
    } else {
        k.to_string()
    }
}

fn built(kernel: BallotKernel, hints: bool, reclaim: bool, expected_keys: u64) -> Gfsl {
    let list = Gfsl::new(GfslParams {
        kernel,
        hints,
        reclaim,
        pool_chunks: GfslParams::chunks_for(expected_keys * 2, TeamSize::ThirtyTwo),
        ..Default::default()
    })
    .unwrap();
    {
        let mut h = list.handle();
        for k in Prefill::HalfRandom.keys(RANGE, 5) {
            h.insert(k, k).unwrap();
        }
    }
    list
}

fn bench_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");

    for kernel in [BallotKernel::Scalar, BallotKernel::Swar] {
        for hints in [false, true] {
            let name = cfg_name(kernel, hints);

            // Read-heavy: one key-sorted batch of gets inside a random hot
            // band per iteration. With hints the sorted dispatch answers
            // most lookups from the hinted chunk's validated snapshot.
            let list = built(kernel, hints, false, RANGE as u64 / 2);
            let mut h = list.handle();
            let mut rng = SplitMix64::new(0x5EED);
            let mut out: Vec<BatchReply> = Vec::with_capacity(BATCH);
            g.bench_function(format!("get_band_{name}"), |b| {
                b.iter(|| {
                    let lo = rng.below((RANGE - BAND) as u64) as u32 + 1;
                    let ops: Vec<BatchOp> = (0..BATCH)
                        .map(|_| BatchOp::Get(lo + rng.below(BAND as u64) as u32))
                        .collect();
                    out.clear();
                    if hints {
                        h.execute_batch_hinted(&ops, &mut out)
                    } else {
                        h.execute_batch(&ops, &mut out)
                    }
                })
            });

            // Steady-state locked write path: duplicate inserts take the
            // chunk lock and scan without mutating, so the list stays fixed
            // across criterion's iteration count.
            let list = built(kernel, hints, false, RANGE as u64 / 2);
            let mut h = list.handle();
            let mut rng = SplitMix64::new(0xD00D);
            g.bench_function(format!("insert_dup_{name}"), |b| {
                b.iter(|| {
                    let k = (rng.below(RANGE as u64 / 2) as u32) * 2 + 2;
                    h.insert(k, k).unwrap()
                })
            });

            // Reclamation churn: monotone insert+remove pairs over a
            // sliding window, recycling zombie chunks through the epoch
            // reclaimer as the window advances.
            const WINDOW: u32 = 4_096;
            let list = Gfsl::new(GfslParams {
                kernel,
                hints,
                reclaim: true,
                pool_chunks: GfslParams::chunks_for(WINDOW as u64 * 4, TeamSize::ThirtyTwo),
                ..Default::default()
            })
            .unwrap();
            let mut h = list.handle();
            for k in 1..=WINDOW {
                h.insert(k, k).unwrap();
            }
            let mut next = WINDOW + 1;
            g.bench_function(format!("churn_pair_{name}"), |b| {
                b.iter(|| {
                    h.insert(next, next).unwrap();
                    assert!(h.remove(next - WINDOW));
                    next += 1;
                })
            });
        }
    }

    g.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
