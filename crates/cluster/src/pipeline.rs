//! Per-shard serve pipelines: the whole `gfsl-serve` stack (admission →
//! batcher → dispatch → supervisor), once per shard, fed disjoint
//! partitions of one global arrival stream.
//!
//! This is the static front end of the cluster: a fixed shard map, one OS
//! thread per shard running [`gfsl_serve::serve`] against that shard's
//! GFSL, requests routed at partition time. Range scans that span shard
//! boundaries are split into one clipped sub-scan per overlapped shard —
//! the same stitch the dynamic router performs, applied to the script.

use gfsl_serve::{serve, Fifo, ReplaySource, ServeConfig, ServiceReport};
use gfsl_workload::{Arrival, ServeOp};

use crate::cluster::Cluster;

/// Aggregated outcome of one cluster serve run.
#[derive(Debug, Clone)]
pub struct ClusterServeReport {
    /// One pipeline report per shard, in shard order.
    pub shards: Vec<ServiceReport>,
    /// Requests executed across all shards (post shed).
    pub total_ops: u64,
    /// Wall clock of the slowest shard pipeline, seconds.
    pub wall_s: f64,
    /// Aggregate service throughput: executed Mop/s over the slowest wall.
    pub mops: f64,
    /// Virtual clock of the slowest shard pipeline, seconds. Shard
    /// pipelines run concurrently, so the cluster's virtual duration is the
    /// max — deterministic under `ExecMode::Modeled`, and the honest
    /// denominator on hosts without enough cores to parallelize for real.
    pub vwall_s: f64,
    /// Aggregate service throughput over the slowest *virtual* wall.
    pub vmops: f64,
}

/// Partition a timed arrival stream across contiguous shard ranges
/// (`bounds` as half-open `(lo, hi)` pairs in ascending order). Point ops
/// land on their owner; a `Range(lo, hi)` op is split into one clipped
/// sub-scan per overlapped shard.
pub fn partition_arrivals(bounds: &[(u32, u32)], arrivals: &[Arrival]) -> Vec<Vec<Arrival>> {
    let owner = |key: u32| -> usize {
        debug_assert!(bounds[0].0 <= key && key < bounds[bounds.len() - 1].1);
        bounds.partition_point(|&(lo, _)| lo <= key) - 1
    };
    let mut parts: Vec<Vec<Arrival>> = vec![Vec::new(); bounds.len()];
    for a in arrivals {
        match a.op {
            ServeOp::Range(lo, hi) => {
                for i in owner(lo)..=owner(hi.max(lo)) {
                    let (slo, shi) = bounds[i];
                    parts[i].push(Arrival {
                        op: ServeOp::Range(lo.max(slo), hi.min(shi - 1)),
                        ..*a
                    });
                }
            }
            // Static pipelines route min ops to the lowest shard: with the
            // whole stream partitioned up front there is no cross-shard
            // fallback, so the scenario must keep its priority-queue keys
            // inside the first shard's range (the dynamic router's
            // `Cluster::pop_min` scans shards instead).
            ServeOp::MinEntry | ServeOp::PopMin => parts[0].push(*a),
            op => parts[owner(op.key())].push(*a),
        }
    }
    parts
}

impl Cluster {
    /// Run one full serve pipeline per shard over `arrivals`, partitioned
    /// by the current shard map. The map must not migrate during the run
    /// (each pipeline pins its shard's structure); use the dynamic router
    /// for migration-concurrent serving.
    pub fn serve_shards(&self, cfg: &ServeConfig, arrivals: &[Arrival]) -> ClusterServeReport {
        let shards = self.shards();
        let parts = partition_arrivals(&self.bounds(), arrivals);
        let reports: Vec<ServiceReport> = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .iter()
                .zip(parts)
                .map(|(shard, part)| {
                    s.spawn(move || {
                        let mut policy = Fifo::default();
                        let mut src = ReplaySource::new(part);
                        serve(&shard.list, cfg, &mut policy, &mut src)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard pipeline must not panic"))
                .collect()
        });
        let total_ops: u64 = reports.iter().map(|r| r.metrics.ops).sum();
        let wall_s = reports
            .iter()
            .map(|r| r.metrics.run_wall_s)
            .fold(0.0f64, f64::max);
        let vwall_s = reports
            .iter()
            .map(|r| r.metrics.clock_end_ns as f64 / 1e9)
            .fold(0.0f64, f64::max);
        ClusterServeReport {
            total_ops,
            wall_s,
            mops: if wall_s > 0.0 {
                total_ops as f64 / wall_s / 1e6
            } else {
                0.0
            },
            vwall_s,
            vmops: if vwall_s > 0.0 {
                total_ops as f64 / vwall_s / 1e6
            } else {
                0.0
            },
            shards: reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_splits_spanning_ranges_and_routes_points() {
        let bounds = [(1u32, 100u32), (100, 200), (200, gfsl::KEY_INF)];
        let arrivals = vec![
            Arrival {
                at_ns: 10,
                client: 0,
                op: ServeOp::Get(5),
            },
            Arrival {
                at_ns: 20,
                client: 1,
                op: ServeOp::Insert(150, 1),
            },
            Arrival {
                at_ns: 30,
                client: 2,
                op: ServeOp::Range(90, 210),
            },
        ];
        let parts = partition_arrivals(&bounds, &arrivals);
        assert_eq!(parts[0].len(), 2, "get(5) + clipped range");
        assert_eq!(parts[0][1].op, ServeOp::Range(90, 99));
        assert_eq!(parts[1].len(), 2, "insert(150) + clipped range");
        assert_eq!(parts[1][1].op, ServeOp::Range(100, 199));
        assert_eq!(parts[2].len(), 1);
        assert_eq!(parts[2][0].op, ServeOp::Range(200, 210));
    }
}
