//! Glue: measured run metrics + structure kind + launch config → modeled
//! GPU throughput.

use gfsl_gpu_model::{occupancy, CostModel, GpuArch, KernelProfile, LaunchConfig, Throughput};

use crate::metrics::RunMetrics;

/// Which structure produced a measurement (selects the kernel profile for
/// the occupancy/spill model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// GFSL with either chunk size.
    Gfsl,
    /// The M&C baseline.
    Mc,
}

impl StructureKind {
    /// The kernel profile for this structure.
    pub fn profile(self) -> KernelProfile {
        match self {
            StructureKind::Gfsl => KernelProfile::gfsl(),
            StructureKind::Mc => KernelProfile::mc(),
        }
    }
}

/// Evaluate a measurement under the paper's default launch configuration.
pub fn evaluate(kind: StructureKind, metrics: &RunMetrics) -> Throughput {
    evaluate_with_launch(kind, metrics, &LaunchConfig::paper_default())
}

/// Evaluate a measurement under an explicit launch configuration (used by
/// the Table 5.1/5.2 warps-per-block sweeps).
pub fn evaluate_with_launch(
    kind: StructureKind,
    metrics: &RunMetrics,
    launch: &LaunchConfig,
) -> Throughput {
    let arch = GpuArch::gtx970();
    let occ = occupancy::occupancy(&arch, &kind.profile(), launch);
    let cm = CostModel::calibrated();
    gfsl_gpu_model::cost::predict(&arch, &occ, &cm, &metrics.to_measurement())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_gfsl, run_mc, RunConfig};
    use gfsl::GfslParams;
    use gfsl_workload::{OpMix, WorkloadSpec};
    use mc_skiplist::McParams;

    /// End-to-end smoke: at a 300K key range (structures well past L2
    /// capacity), GFSL's modeled throughput must clearly beat M&C's — the
    /// paper's headline result.
    #[test]
    fn gfsl_beats_mc_beyond_l2_capacity() {
        let spec = WorkloadSpec::mixed(OpMix::C80, 300_000, 30_000, 11);
        let cfg = RunConfig::default();
        let g = run_gfsl(&spec, GfslParams::sized_for(400_000), &cfg);
        let m = run_mc(&spec, McParams::sized_for(400_000), &cfg);
        let tg = evaluate(StructureKind::Gfsl, &g);
        let tm = evaluate(StructureKind::Mc, &m);
        assert!(
            tg.mops > tm.mops * 1.5,
            "expected a clear GFSL win: gfsl={:.1} mc={:.1}",
            tg.mops,
            tm.mops
        );
    }
}
