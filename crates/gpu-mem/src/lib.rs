//! Simulated GPU global memory.
//!
//! This crate is the memory substrate shared by GFSL and the M&C baseline:
//!
//! * [`pool::WordPool`] — "device memory": a flat array of 64-bit atomic
//!   words with a bump allocator handing out 32-bit word indexes. GFSL
//!   addresses chunks by 32-bit pool index exactly as the paper does (§4.2:
//!   "chunks are accessed using 32-bit indexes to the memory pool").
//! * [`layout`] — cache-line geometry (128-byte lines, as on Maxwell).
//! * [`coalesce`] — the half-warp coalescing rule: each half-warp's access
//!   requests are combined and one memory transaction is issued per distinct
//!   cache line covered (paper §2.2, "Memory Coalescing").
//! * [`l2::L2Cache`] — a set-associative LRU model of the GTX 970's 1.75 MB
//!   L2 cache; whether the working set fits in L2 is the single biggest
//!   effect in the paper's evaluation (§5.3).
//! * [`traffic::Traffic`] / [`probe`] — per-worker transaction counters and
//!   the probe trait the data structures call on every access. The
//!   `NoProbe` implementation compiles to nothing, so the uninstrumented
//!   structures run at full speed for the host-throughput benchmarks.
//!
//! Correctness note: the paper's algorithm relies on 8-byte entries being
//! read and written with single-word atomicity and on CAS for lock words.
//! `AtomicU64` with acquire/release ordering provides exactly those
//! guarantees (and documents them, unlike CUDA's informal model).

#![warn(missing_docs)]

pub mod coalesce;
pub mod l2;
pub mod layout;
pub mod pool;
pub mod probe;
pub mod reclaim;
pub mod sched_probe;
pub mod schedule;
pub mod traffic;

pub use l2::L2Cache;
pub use layout::{LineAddr, WordAddr, LINE_BYTES, LINE_WORDS, WORD_BYTES};
pub use pool::{PoolExhausted, WordPool};
pub use probe::{CountingProbe, CrashPoint, MemProbe, NoProbe, Prefetch};
pub use reclaim::{EpochReclaimer, ReclaimStats, SlotId};
pub use sched_probe::{Turnstile, YieldProbe};
pub use schedule::{AccessKind, HookGuard, ScheduledAtomicU64, SchedHook};
pub use traffic::Traffic;
