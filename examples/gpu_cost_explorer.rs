//! Explore the GPU cost model: run one real workload against both
//! structures, then ask "what-if" questions of the performance model —
//! different launch configurations, a hypothetical bigger L2, zero
//! divergence — the kind of analysis Chapter 5 of the paper does with a
//! profiler.
//!
//! ```text
//! cargo run --release --example gpu_cost_explorer
//! ```

use gfsl::GfslParams;
use gfsl_gpu_model::{occupancy, CostModel, GpuArch, KernelProfile, LaunchConfig};
use gfsl_harness::runner::{run_gfsl, run_mc, RunConfig};
use gfsl_workload::{OpMix, WorkloadSpec};
use mc_skiplist::McParams;

fn main() {
    let range = 300_000u32;
    let spec = WorkloadSpec::mixed(OpMix::C80, range, 60_000, 0xE27);
    let cfg = RunConfig::default();

    println!("running [10,10,80] on a {range}-key range against both structures...\n");
    let g = run_gfsl(&spec, GfslParams::sized_for(range as u64 * 2), &cfg);
    let m = run_mc(&spec, McParams::sized_for(range as u64 * 2), &cfg);

    let arch = GpuArch::gtx970();
    let cm = CostModel::calibrated();

    for (name, kernel, metrics) in [
        ("GFSL-32", KernelProfile::gfsl(), &g),
        ("M&C", KernelProfile::mc(), &m),
    ] {
        println!("== {name} ==");
        println!(
            "  measured: {:.1} txns/op, {:.0}% L2 hits, {:.1} warp-steps/op",
            metrics.txns_per_op(),
            metrics.traffic.l2_hit_ratio() * 100.0,
            metrics.divergence.warp_steps as f64 / metrics.n_ops as f64,
        );
        println!(
            "  SIMT efficiency: {:.0}% (divergent branches: {})",
            metrics.divergence.efficiency(32) * 100.0,
            metrics.divergence.divergent_branches,
        );

        // Sweep launch configurations (the Table 5.1/5.2 question).
        print!("  modeled MOPS by warps/block:");
        for warps in [8u32, 16, 24, 32] {
            let occ = occupancy::occupancy(&arch, &kernel, &LaunchConfig { warps_per_block: warps });
            let tp = gfsl_gpu_model::cost::predict(&arch, &occ, &cm, &metrics.to_measurement());
            print!("  {warps}w={:.1}", tp.mops);
        }
        println!();

        // What if the GPU had no DRAM penalty (infinite L2)?
        let occ = occupancy::occupancy(&arch, &kernel, &LaunchConfig::paper_default());
        let mut all_hit = metrics.to_measurement();
        all_hit.l2_hits += all_hit.l2_misses;
        all_hit.l2_misses = 0;
        all_hit.miss_sectors = 0;
        let base = gfsl_gpu_model::cost::predict(&arch, &occ, &cm, &metrics.to_measurement());
        let ideal = gfsl_gpu_model::cost::predict(&arch, &occ, &cm, &all_hit);
        println!(
            "  baseline {:.1} MOPS ({}-bound) -> infinite-L2 {:.1} MOPS ({:+.0}%)",
            base.mops,
            if base.memory_bound { "memory" } else { "compute" },
            ideal.mops,
            (ideal.mops / base.mops - 1.0) * 100.0
        );

        // Where does the time go?
        let n = metrics.n_ops as f64;
        println!(
            "  per-op: mem {:.1} ns, compute {:.1} ns, contention {:.1} ns\n",
            base.mem_seconds * 1e9 / n,
            base.compute_seconds * 1e9 / n,
            base.contention_seconds * 1e9 / n
        );
    }

    println!("takeaway: M&C gains far more from an infinite L2 — its collapse on");
    println!("large key ranges is a memory-system effect, which is the paper's");
    println!("central claim (GFSL's coalesced chunk reads keep it nearly flat).");
}
