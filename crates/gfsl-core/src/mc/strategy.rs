//! Exploration strategies: how the model checker chooses schedules.
//!
//! A [`Scheduler`] sees the stream of *decision points* the
//! [`super::controller::McController`] surfaces — moments where two or
//! more runnable threads are parked and one must be granted the next
//! access — and answers with a candidate index. Three strategies:
//!
//! * [`RandomWalk`] — a seeded uniform pick per decision; subsumes PR 1's
//!   seeded chaos scheduling (every walked schedule is automatically a
//!   byte-script counterexample if it fails, because the controller
//!   records every decision).
//! * [`Replay`] — a single episode driven by a recorded decision byte
//!   list; exhausted bytes fall back to the [`default_index`] policy,
//!   which is what makes ddmin-shortened prefixes replayable.
//! * [`DfsBounded`] — bounded-exhaustive depth-first enumeration with a
//!   *preemption bound* (CHESS-style: schedules that preempt a runnable
//!   thread more than `bound` times are pruned — empirically almost all
//!   concurrency bugs need very few preemptions) and optional
//!   partial-order-reduction pruning keyed on (address, access-kind)
//!   independence.
//!
//! All strategies share one default policy so prefixes mean the same
//! thing everywhere: *continue the last-run thread if it is a candidate,
//! else the lowest-id candidate*. Non-preemptive continuations are free;
//! only departures from the default at a point where the last thread was
//! still runnable count against the preemption budget.

use gfsl_gpu_mem::schedule::AccessKind;
use gfsl_gpu_mem::WordAddr;
use gfsl_rng::SplitMix64;

/// The access a parked thread will perform when granted its turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingAccess {
    /// Load / Store / Rmw.
    pub kind: AccessKind,
    /// Logical word address (pool index or reserved synthetic address).
    pub addr: WordAddr,
}

impl PendingAccess {
    /// Two pending accesses conflict iff they touch the same address and
    /// are not both loads — the (address, access-kind) independence rule.
    #[inline]
    pub fn conflicts_with(&self, other: &PendingAccess) -> bool {
        self.addr == other.addr && !self.kind.independent_with(other.kind)
    }
}

/// The shared default policy: continue `last` if it is a candidate, else
/// take the lowest-id candidate. Returns an index into `candidates`.
#[inline]
pub fn default_index(candidates: &[usize], last: Option<usize>) -> usize {
    last.and_then(|l| candidates.iter().position(|&c| c == l))
        .unwrap_or(0)
}

/// A schedule-exploration strategy (see module docs).
///
/// The contract: `begin_episode` is called before each episode (false =
/// exploration finished); during the episode `pick` is called once per
/// decision point with the candidate thread ids (sorted ascending), each
/// candidate's pending access, and the thread granted the previous step;
/// `end_episode` is called after teardown. The structure run under the
/// controller is deterministic, so a strategy replaying a previous
/// episode's choices sees the identical decision-point sequence.
pub trait Scheduler: Send {
    /// Prepare the next episode. `false` ends exploration.
    fn begin_episode(&mut self) -> bool;
    /// Choose a candidate index at a decision point.
    fn pick(
        &mut self,
        candidates: &[usize],
        pending: &[PendingAccess],
        last: Option<usize>,
    ) -> usize;
    /// Called once per *granted* access, in grant order — including the
    /// single-candidate fast-path grants that never reach [`Self::pick`].
    /// [`DfsBounded`] builds its per-episode access log from this for
    /// delayed-conflict POR pruning; other strategies ignore it.
    fn observe(&mut self, _thread: usize, _access: PendingAccess) {}
    /// Episode finished (teardown checks already ran).
    fn end_episode(&mut self) {}
    /// True if exploration ended because a cap was hit rather than the
    /// space being exhausted (reported in the stats artifact — a silent
    /// cap would read as "explored everything").
    fn truncated(&self) -> bool {
        false
    }
}

/// Seeded uniform random walk over `episodes` schedules.
pub struct RandomWalk {
    rng: SplitMix64,
    remaining: u64,
}

impl RandomWalk {
    /// `episodes` seeded walks from `seed`.
    pub fn new(seed: u64, episodes: u64) -> RandomWalk {
        RandomWalk {
            rng: SplitMix64::new(seed),
            remaining: episodes,
        }
    }
}

impl Scheduler for RandomWalk {
    fn begin_episode(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        true
    }

    fn pick(&mut self, candidates: &[usize], _: &[PendingAccess], _: Option<usize>) -> usize {
        self.rng.below(candidates.len() as u64) as usize
    }
}

/// Replay one episode from a recorded decision byte list.
pub struct Replay {
    bytes: Vec<u8>,
    pos: usize,
    ran: bool,
}

impl Replay {
    /// Replay `bytes` (one byte per decision point, `byte % candidates`).
    pub fn new(bytes: Vec<u8>) -> Replay {
        Replay {
            bytes,
            pos: 0,
            ran: false,
        }
    }
}

impl Scheduler for Replay {
    fn begin_episode(&mut self) -> bool {
        if self.ran {
            return false;
        }
        self.ran = true;
        self.pos = 0;
        true
    }

    fn pick(&mut self, candidates: &[usize], _: &[PendingAccess], last: Option<usize>) -> usize {
        match self.bytes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                b as usize % candidates.len()
            }
            None => default_index(candidates, last),
        }
    }
}

/// One decision point on the DFS path.
struct Node {
    /// Candidate thread ids (ascending).
    candidates: Vec<usize>,
    /// Pending access of each candidate.
    pending: Vec<PendingAccess>,
    /// Thread granted the step before this decision.
    last: Option<usize>,
    /// Index currently chosen for this episode.
    chosen: usize,
    /// Index chosen on the node's *first* visit (alternatives equal to it
    /// are never POR-pruned).
    first_chosen: usize,
    /// Candidate indexes already explored from this node.
    tried: Vec<bool>,
    /// Preemptions spent on the path strictly above this node.
    preemptions_before: u32,
    /// Length of the access log when this decision was made: the chosen
    /// access lands at exactly this log position, so `log[log_pos..]` is
    /// "everything that happened from this node onward" in any episode
    /// sharing the prefix (determinism makes the prefix log identical).
    log_pos: usize,
}

impl Node {
    /// Is picking `idx` here a preemption (switching away from a
    /// still-runnable last thread)?
    fn is_preempt(&self, idx: usize) -> bool {
        match self.last {
            Some(l) => self.candidates.contains(&l) && self.candidates[idx] != l,
            None => false,
        }
    }
}

/// Bounded-exhaustive DFS with a preemption bound and optional POR pruning.
pub struct DfsBounded {
    /// Maximum preemptions per schedule.
    bound: u32,
    /// Delayed-conflict POR pruning (see [`DfsBounded::admissible_por`]).
    por: bool,
    path: Vec<Node>,
    depth: usize,
    cur_preemptions: u32,
    exhausted: bool,
    /// Granted accesses of the episode in progress (or just finished), in
    /// grant order — rebuilt identically over shared prefixes by
    /// determinism, so node `log_pos` indexes stay valid across episodes.
    log: Vec<(usize, PendingAccess)>,
    /// Hard cap on episodes (safety valve for misjudged configs); 0 = none.
    max_episodes: u64,
    episodes: u64,
    hit_cap: bool,
}

impl DfsBounded {
    /// Exhaustive search at `bound` preemptions; `por` enables
    /// independence pruning; `max_episodes` caps runaway spaces (0 = no
    /// cap) and sets [`Scheduler::truncated`] when hit.
    pub fn new(bound: u32, por: bool, max_episodes: u64) -> DfsBounded {
        DfsBounded {
            bound,
            por,
            path: Vec::new(),
            depth: 0,
            cur_preemptions: 0,
            exhausted: false,
            log: Vec::new(),
            max_episodes,
            episodes: 0,
            hit_cap: false,
        }
    }

    /// Delayed-conflict POR admissibility of alternative `idx` at `node`:
    /// explore it iff
    ///
    /// * its thread has not run before this node (its pending access is
    ///   its episode entry; the future behind it is entirely unexplored,
    ///   so there is nothing to prove commutativity against), or
    /// * its pending access *conflicts* (same address, not both loads)
    ///   with some access another thread performed **from this node
    ///   onward** in the episode just executed.
    ///
    /// Otherwise the swap commutes with everything it would be reordered
    /// against in the observed trace and the alternative is pruned. This
    /// consults one executed trace rather than tracking happens-before
    /// and sleep sets, so it is a pruning *heuristic* in the spirit of
    /// DPOR's backtrack-set rule, not sound stateless-model-checking POR
    /// — see DESIGN.md §18 for the argument and its known blind spots.
    fn admissible_por(&self, node: &Node, idx: usize) -> bool {
        let thread = node.candidates[idx];
        let started = self.log[..node.log_pos].iter().any(|&(t, _)| t == thread);
        if !started {
            return true;
        }
        let pending = &node.pending[idx];
        self.log[node.log_pos..]
            .iter()
            .any(|(t, a)| *t != thread && pending.conflicts_with(a))
    }

    /// Find the deepest node with an admissible untried alternative, set
    /// it, and truncate the path below it. Sets `exhausted` if none.
    fn backtrack(&mut self) {
        while let Some(node) = self.path.last() {
            let mut found = None;
            for idx in 0..node.candidates.len() {
                if node.tried[idx] {
                    continue;
                }
                if node.is_preempt(idx) && node.preemptions_before >= self.bound {
                    continue;
                }
                if self.por && idx != node.first_chosen && !self.admissible_por(node, idx) {
                    continue;
                }
                found = Some(idx);
                break;
            }
            match found {
                Some(idx) => {
                    let node = self.path.last_mut().expect("node exists");
                    node.tried[idx] = true;
                    node.chosen = idx;
                    return;
                }
                None => {
                    self.path.pop();
                }
            }
        }
        self.exhausted = true;
    }
}

impl Scheduler for DfsBounded {
    fn begin_episode(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        if self.max_episodes > 0 && self.episodes >= self.max_episodes {
            self.hit_cap = true;
            return false;
        }
        self.episodes += 1;
        self.depth = 0;
        self.cur_preemptions = 0;
        // Rebuilt from observe(); the shared prefix reproduces the same
        // grants, so node log positions recorded earlier stay valid.
        self.log.clear();
        true
    }

    fn pick(
        &mut self,
        candidates: &[usize],
        pending: &[PendingAccess],
        last: Option<usize>,
    ) -> usize {
        let d = self.depth;
        self.depth += 1;
        if d < self.path.len() {
            let node = &self.path[d];
            debug_assert_eq!(
                node.candidates, candidates,
                "nondeterministic episode: decision point {d} changed candidates"
            );
            if node.is_preempt(node.chosen) {
                self.cur_preemptions += 1;
            }
            return node.chosen;
        }
        // Past the planned prefix: extend with the default policy.
        let chosen = default_index(candidates, last);
        let node = Node {
            candidates: candidates.to_vec(),
            pending: pending.to_vec(),
            last,
            chosen,
            first_chosen: chosen,
            tried: {
                let mut t = vec![false; candidates.len()];
                t[chosen] = true;
                t
            },
            preemptions_before: self.cur_preemptions,
            log_pos: self.log.len(),
        };
        if node.is_preempt(chosen) {
            self.cur_preemptions += 1;
        }
        self.path.push(node);
        chosen
    }

    fn observe(&mut self, thread: usize, access: PendingAccess) {
        self.log.push((thread, access));
    }

    fn end_episode(&mut self) {
        self.backtrack();
    }

    fn truncated(&self) -> bool {
        self.hit_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(kind: AccessKind, addr: WordAddr) -> PendingAccess {
        PendingAccess { kind, addr }
    }

    #[test]
    fn conflict_rule() {
        assert!(!pa(AccessKind::Load, 1).conflicts_with(&pa(AccessKind::Load, 1)));
        assert!(pa(AccessKind::Load, 1).conflicts_with(&pa(AccessKind::Store, 1)));
        assert!(!pa(AccessKind::Store, 1).conflicts_with(&pa(AccessKind::Store, 2)));
        assert!(pa(AccessKind::Rmw, 3).conflicts_with(&pa(AccessKind::Rmw, 3)));
    }

    #[test]
    fn default_policy_continues_last() {
        assert_eq!(default_index(&[0, 1], Some(1)), 1);
        assert_eq!(default_index(&[0, 1], Some(2)), 0);
        assert_eq!(default_index(&[0, 1], None), 0);
    }

    /// Drive a DFS over a synthetic 2-thread space where every decision
    /// point offers both threads with conflicting accesses: bound-1 DFS
    /// must enumerate the non-preemptive schedule plus one schedule per
    /// possible single preemption point.
    #[test]
    fn dfs_bound1_counts_single_preemption_schedules() {
        let steps = 4usize; // decision points per episode
        let mut dfs = DfsBounded::new(1, false, 0);
        let mut schedules = Vec::new();
        while dfs.begin_episode() {
            let mut picks = Vec::new();
            for _ in 0..steps {
                let p = dfs.pick(
                    &[0, 1],
                    &[pa(AccessKind::Store, 7), pa(AccessKind::Store, 7)],
                    Some(0),
                );
                picks.push(p);
            }
            dfs.end_episode();
            schedules.push(picks);
        }
        // Default (all thread 0) + one preemption at each of 4 points.
        // A preemption at point i flips the choice at i to thread 1; the
        // default policy then continues thread 1 afterwards... but `last`
        // is fixed to 0 in this synthetic driver, so the suffix returns
        // to 0. Either way: 1 + 4 distinct schedules.
        assert_eq!(schedules.len(), 1 + steps);
        let unique: std::collections::HashSet<_> = schedules.iter().collect();
        assert_eq!(unique.len(), schedules.len(), "no duplicate schedules");
    }

    /// POR pruning: once both threads have started, alternatives whose
    /// pending access conflicts with nothing later in the executed trace
    /// are pruned — independent loads leave exactly one schedule.
    #[test]
    fn dfs_por_prunes_independent_branches() {
        let run = |kind: AccessKind| {
            let mut dfs = DfsBounded::new(2, true, 0);
            let mut episodes = 0;
            while dfs.begin_episode() {
                // Both threads' entry accesses: they have "started", so
                // the never-started rule does not bypass pruning.
                dfs.observe(0, pa(AccessKind::Load, 8));
                dfs.observe(1, pa(AccessKind::Load, 9));
                for _ in 0..6 {
                    let p = dfs.pick(&[0, 1], &[pa(kind, 1), pa(kind, 1)], Some(0));
                    dfs.observe(p, pa(kind, 1));
                }
                dfs.end_episode();
                episodes += 1;
            }
            episodes
        };
        assert_eq!(
            run(AccessKind::Load),
            1,
            "independent accesses: nothing to reorder"
        );
        assert!(run(AccessKind::Store) > 1, "conflicting stores branch");
    }

    /// The never-started rule: a thread that has not run before a node
    /// has an entirely unexplored future, so its entry access is never
    /// pruned even when it conflicts with nothing observed.
    #[test]
    fn dfs_por_never_prunes_unstarted_threads() {
        let mut dfs = DfsBounded::new(2, true, 0);
        let mut episodes = 0;
        while dfs.begin_episode() {
            for _ in 0..3 {
                let p = dfs.pick(
                    &[0, 1],
                    &[pa(AccessKind::Load, 1), pa(AccessKind::Load, 2)],
                    Some(0),
                );
                dfs.observe(p, [pa(AccessKind::Load, 1), pa(AccessKind::Load, 2)][p]);
            }
            dfs.end_episode();
            episodes += 1;
        }
        // Default episode + one "thread 1 enters here" branch per node;
        // inside those branches thread 1 has started and its independent
        // loads prune everything deeper.
        assert_eq!(episodes, 4);
    }

    #[test]
    fn episode_cap_reports_truncation() {
        let mut dfs = DfsBounded::new(2, false, 3);
        let mut episodes = 0;
        while dfs.begin_episode() {
            for _ in 0..8 {
                dfs.pick(
                    &[0, 1],
                    &[pa(AccessKind::Store, 1), pa(AccessKind::Store, 1)],
                    Some(0),
                );
            }
            dfs.end_episode();
            episodes += 1;
        }
        assert_eq!(episodes, 3);
        assert!(dfs.truncated());
    }

    #[test]
    fn replay_consumes_bytes_then_defaults() {
        let mut r = Replay::new(vec![1, 0]);
        assert!(r.begin_episode());
        assert_eq!(r.pick(&[0, 1], &[], Some(0)), 1);
        assert_eq!(r.pick(&[0, 1], &[], Some(1)), 0);
        // Bytes exhausted: default policy.
        assert_eq!(r.pick(&[0, 1], &[], Some(1)), 1);
        assert!(!r.begin_episode(), "replay is a single episode");
    }

    #[test]
    fn random_walk_is_seeded_and_bounded() {
        let run = |seed| {
            let mut w = RandomWalk::new(seed, 3);
            let mut picks = Vec::new();
            while w.begin_episode() {
                for _ in 0..10 {
                    picks.push(w.pick(&[0, 1, 2], &[], None));
                }
            }
            picks
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        assert_eq!(run(9).len(), 30);
    }
}
