//! The model checker's turnstile: one thread runs at a time, the
//! [`Scheduler`] decides which.
//!
//! Same grant discipline as [`crate::chaos::ChaosController`] (a turn is
//! granted only when every live participant is parked, so the schedule is
//! a pure function of the decision stream, not OS timing), with three
//! extensions the chaos layer does not need:
//!
//! * **Access-level parking.** Participants park at
//!   [`gfsl_gpu_mem::schedule`] yield points — every individual pool
//!   atomic in `sched` builds — and report the access kind and address
//!   they are *about to* perform, so the scheduler can reason about
//!   conflicts before committing an order.
//! * **Decision recording.** Every decision point with ≥ 2 effective
//!   candidates logs the chosen index as one byte. The byte list replays
//!   the episode exactly (via [`super::strategy::Replay`]) and is what
//!   ddmin minimizes; the trace hash (same word-wise FNV fold as chaos)
//!   is the one-line fingerprint.
//! * **Spin-wait tracking.** `wait_hint(addr)` marks the caller as
//!   spinning on `addr`; waiting threads are excluded from the effective
//!   candidate set while any non-waiting thread is runnable (scheduling a
//!   spinner before its lock word changes only permutes futile spins),
//!   and every granted store/RMW clears the flags so woken spinners
//!   rejoin the candidate set. If *everyone* is waiting the controller
//!   schedules them anyway — a genuinely deadlocked protocol then trips
//!   the per-episode step bomb instead of hanging the test run.
//!
//! Like the chaos turnstile, a **retired** participant passes through
//! ungated (and unrecorded): a thread that keeps executing probed code
//! after retirement must never park waiting for a turn no scheduler
//! grants to the retired.

use std::sync::{Arc, Condvar, Mutex};

use gfsl_gpu_mem::schedule::{AccessKind, SchedHook};
use gfsl_gpu_mem::WordAddr;
use gfsl_rng::fnv;

use super::strategy::{PendingAccess, Scheduler};

/// Synthetic address of the episode start gate: every worker's first
/// yield point, so all threads are parked before any instruction of any
/// operation runs (thread *startup* code would otherwise race ungated).
pub const SYNTH_START: WordAddr = 0xFFFF_FFFC;

/// A strategy shared between the episode executor (between episodes) and
/// the controller (during an episode).
pub type SharedScheduler = Arc<Mutex<Box<dyn Scheduler>>>;

struct McState {
    parked: Vec<bool>,
    retired: Vec<bool>,
    pending: Vec<PendingAccess>,
    waiting: Vec<bool>,
    granted: Option<usize>,
    last: Option<usize>,
    decisions: Vec<u8>,
    trace: u64,
    steps: u64,
    max_steps: u64,
}

/// The per-episode scheduling turnstile (see module docs). One per
/// episode; workers attach via [`McController::hook`].
pub struct McController {
    state: Mutex<McState>,
    cv: Condvar,
    strategy: SharedScheduler,
}

impl McController {
    /// A controller for `threads` participants driving decisions from
    /// `strategy`. `max_steps` bounds one episode's granted turns (the
    /// livelock/deadlock bomb); 0 means no bound.
    pub fn new(threads: usize, strategy: SharedScheduler, max_steps: u64) -> Arc<McController> {
        Arc::new(McController {
            state: Mutex::new(McState {
                parked: vec![false; threads],
                retired: vec![false; threads],
                pending: vec![
                    PendingAccess {
                        kind: AccessKind::Load,
                        addr: 0,
                    };
                    threads
                ],
                waiting: vec![false; threads],
                granted: None,
                last: None,
                decisions: Vec::new(),
                trace: fnv::OFFSET,
                steps: 0,
                max_steps,
            }),
            cv: Condvar::new(),
            strategy,
        })
    }

    /// The [`SchedHook`] for participant `id` (register it in that
    /// worker's thread-local via [`gfsl_gpu_mem::schedule::register`]).
    pub fn hook(self: &Arc<McController>, id: usize) -> Arc<McHook> {
        Arc::new(McHook {
            controller: self.clone(),
            id,
        })
    }

    /// Declare participant `id` finished. Idempotent; wakes the turnstile
    /// so the remaining participants' parked==live condition can re-form.
    pub fn retire(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        if st.retired[id] {
            return;
        }
        st.retired[id] = true;
        st.parked[id] = false;
        st.waiting[id] = false;
        if st.granted == Some(id) {
            st.granted = None;
        }
        self.cv.notify_all();
    }

    /// The episode's trace hash (word-wise FNV over every granted step's
    /// (thread, kind, address), same fold as the chaos trace hashes).
    pub fn trace_hash(&self) -> u64 {
        self.state.lock().unwrap().trace
    }

    /// Granted turns this episode.
    pub fn steps(&self) -> u64 {
        self.state.lock().unwrap().steps
    }

    /// The episode's decision byte log (one byte per ≥2-candidate
    /// decision point: the chosen index into the effective candidate
    /// list). Feed to [`super::strategy::Replay`] to reproduce.
    pub fn decisions(&self) -> Vec<u8> {
        self.state.lock().unwrap().decisions.clone()
    }

    fn step(&self, id: usize, kind: AccessKind, addr: WordAddr) {
        let mut st = self.state.lock().unwrap();
        if st.retired[id] {
            // Retired passthrough: ungated AND unrecorded (an ungated
            // access interleaves on OS timing; folding it into the trace
            // would break replay determinism).
            return;
        }
        st.pending[id] = PendingAccess { kind, addr };
        st.parked[id] = true;
        loop {
            if st.granted == Some(id) {
                st.granted = None;
                st.parked[id] = false;
                st.last = Some(id);
                st.trace = fnv::fold_word(st.trace, id as u64);
                st.trace = fnv::fold_word(st.trace, u64::from(kind.code()));
                st.trace = fnv::fold_word(st.trace, u64::from(addr));
                st.steps += 1;
                // Feed the access log the DFS's delayed-conflict pruning
                // reads; lock order state -> strategy matches decide().
                self.strategy
                    .lock()
                    .unwrap()
                    .observe(id, PendingAccess { kind, addr });
                if kind != AccessKind::Load {
                    // A write landed: spinners may now observe what they
                    // were waiting for. Conservative (clears on *any*
                    // write, not just the watched address): a woken
                    // spinner re-parks and re-hints at worst.
                    for i in 0..st.waiting.len() {
                        if !st.retired[i] {
                            st.waiting[i] = false;
                        }
                    }
                }
                let max = st.max_steps;
                let over_budget = max > 0 && st.steps > max;
                self.cv.notify_all();
                drop(st);
                if over_budget {
                    panic!(
                        "mc: episode exceeded {max} scheduled steps — livelocked or \
                         deadlocked schedule (all threads spin-waiting?)"
                    );
                }
                return;
            }
            if st.granted.is_none() {
                let live = st.retired.iter().filter(|&&r| !r).count();
                let parked = st
                    .parked
                    .iter()
                    .zip(&st.retired)
                    .filter(|&(&p, &r)| p && !r)
                    .count();
                if parked == live && live > 0 {
                    let next = Self::decide(&mut st, &self.strategy);
                    st.granted = Some(next);
                    self.cv.notify_all();
                    if next == id {
                        continue;
                    }
                }
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// All live participants are parked: compute the effective candidate
    /// set, consult the strategy if there is a real choice, log it.
    fn decide(st: &mut McState, strategy: &SharedScheduler) -> usize {
        let enabled: Vec<usize> = (0..st.parked.len())
            .filter(|&i| st.parked[i] && !st.retired[i])
            .collect();
        debug_assert!(!enabled.is_empty());
        let non_waiting: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|&i| !st.waiting[i])
            .collect();
        let effective = if non_waiting.is_empty() {
            enabled
        } else {
            non_waiting
        };
        if effective.len() == 1 {
            return effective[0];
        }
        let pending: Vec<PendingAccess> = effective.iter().map(|&i| st.pending[i]).collect();
        let idx = strategy
            .lock()
            .unwrap()
            .pick(&effective, &pending, st.last);
        assert!(idx < effective.len(), "scheduler picked out of range");
        st.decisions.push(idx as u8);
        effective[idx]
    }

    fn note_wait(&self, id: usize, _addr: WordAddr) {
        let mut st = self.state.lock().unwrap();
        if !st.retired[id] {
            st.waiting[id] = true;
        }
    }
}

/// Per-thread [`SchedHook`] bridging the thread-local yield points to the
/// shared [`McController`].
pub struct McHook {
    controller: Arc<McController>,
    id: usize,
}

impl SchedHook for McHook {
    fn yield_point(&self, kind: AccessKind, addr: WordAddr) {
        self.controller.step(self.id, kind, addr);
    }
    fn wait_hint(&self, addr: WordAddr) {
        self.controller.note_wait(self.id, addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::strategy::Replay;

    fn shared(s: impl Scheduler + 'static) -> SharedScheduler {
        Arc::new(Mutex::new(Box::new(s)))
    }

    /// Two threads, three gated accesses each: a replayed decision list
    /// produces a deterministic grant order and trace hash.
    #[test]
    fn turnstile_serializes_and_replays() {
        let run = |bytes: Vec<u8>| {
            let strategy = shared(Replay::new(bytes));
            strategy.lock().unwrap().begin_episode();
            let ctl = McController::new(2, strategy, 1000);
            let order = Arc::new(Mutex::new(Vec::new()));
            std::thread::scope(|s| {
                for id in 0..2usize {
                    let ctl = ctl.clone();
                    let order = order.clone();
                    s.spawn(move || {
                        let hook = ctl.hook(id);
                        for a in 0..3u32 {
                            hook.yield_point(AccessKind::Store, 100 + a);
                            order.lock().unwrap().push((id, a));
                        }
                        ctl.retire(id);
                    });
                }
            });
            let order = order.lock().unwrap().clone();
            (order, ctl.trace_hash(), ctl.steps())
        };
        let a = run(vec![0, 1, 0, 1]);
        let b = run(vec![0, 1, 0, 1]);
        assert_eq!(a, b, "same decisions ⇒ same order and trace");
        let c = run(vec![1, 1, 1, 1]);
        assert_ne!(a.1, c.1, "different decisions ⇒ different trace");
        assert_eq!(a.2, 6, "each access is one granted step");
    }

    /// A retired participant's accesses pass through without parking.
    #[test]
    fn retired_passthrough_never_parks() {
        let strategy = shared(Replay::new(Vec::new()));
        strategy.lock().unwrap().begin_episode();
        let ctl = McController::new(2, strategy, 1000);
        ctl.retire(1);
        let hook = ctl.hook(1);
        // Would park forever pre-fix: no peer is running to grant a turn.
        hook.yield_point(AccessKind::Store, 5);
        hook.wait_hint(5);
        assert_eq!(ctl.steps(), 0, "passthrough accesses are unrecorded");
    }

    /// Spin-wait flags exclude spinners until a write is granted.
    #[test]
    fn wait_hint_deprioritizes_spinner() {
        // Thread 1 hints a wait, then parks; thread 0 keeps running.
        // The decision log must show no ≥2-candidate decisions granted to
        // the waiting thread until thread 0's store clears the flag.
        let strategy = shared(Replay::new(vec![0, 0, 0, 0, 0, 0, 0, 0]));
        strategy.lock().unwrap().begin_episode();
        let ctl = McController::new(2, strategy, 1000);
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            {
                let ctl = ctl.clone();
                let order = order.clone();
                s.spawn(move || {
                    let hook = ctl.hook(0);
                    for _ in 0..3 {
                        hook.yield_point(AccessKind::Load, 1);
                        order.lock().unwrap().push(0);
                    }
                    hook.yield_point(AccessKind::Store, 2); // wakes spinner
                    order.lock().unwrap().push(0);
                    ctl.retire(0);
                });
            }
            {
                let ctl = ctl.clone();
                let order = order.clone();
                s.spawn(move || {
                    let hook = ctl.hook(1);
                    hook.wait_hint(2);
                    hook.yield_point(AccessKind::Load, 2);
                    order.lock().unwrap().push(1);
                    ctl.retire(1);
                });
            }
        });
        let order = order.lock().unwrap().clone();
        // Thread 1 was marked waiting before its first park, so thread 0
        // runs alone until its store; thread 1's access is granted last.
        assert_eq!(order, vec![0, 0, 0, 0, 1]);
    }
}
