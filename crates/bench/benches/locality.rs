//! Locality engine bench: the multi-level finger and foresight prefetch
//! against the single-chunk hint cache, plus the flat-bottom (B-Skiplist)
//! engine variant, on the two shapes the locality work targets — hot-band
//! batched gets and sliding-window reclamation churn.
//!
//! The authoritative grid with gates and locality counters is the
//! `hotpath` harness experiment (`repro --experiment hotpath`), which
//! emits `BENCH_hotpath.json`; this target tracks the same paths under
//! criterion's statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use gfsl::{
    BallotKernel, BatchOp, BatchReply, FlatSkiplist, Gfsl, GfslParams, KvEngine, Prefetch,
    TeamSize,
};
use gfsl_workload::{Prefill, SplitMix64};

const RANGE: u32 = 200_000;
const BATCH: usize = 256;
/// Hot band for clustered reads: a few hundred bottom-level chunks.
const BAND: u32 = 8_192;

/// The chunked-engine locality grid: hints (PR 7 baseline), fingers, and
/// fingers + foresight prefetch.
const GRID: [(&str, bool, bool, Prefetch); 3] = [
    ("hints", true, false, Prefetch::Off),
    ("fingers", false, true, Prefetch::Off),
    ("fingers_pf", false, true, Prefetch::Next),
];

fn built(hints: bool, fingers: bool, prefetch: Prefetch, reclaim: bool, expected: u64) -> Gfsl {
    let list = Gfsl::new(GfslParams {
        kernel: BallotKernel::Swar,
        hints,
        fingers,
        prefetch,
        reclaim,
        pool_chunks: GfslParams::chunks_for(expected * 2, TeamSize::ThirtyTwo),
        ..Default::default()
    })
    .unwrap();
    {
        let mut h = list.handle();
        for k in Prefill::HalfRandom.keys(RANGE, 5) {
            h.insert(k, k).unwrap();
        }
    }
    list
}

fn bench_locality(c: &mut Criterion) {
    let mut g = c.benchmark_group("locality");

    for (name, hints, fingers, prefetch) in GRID {
        // Read-heavy: one key-sorted batch of gets inside a random hot band
        // per iteration; the finger keeps the whole descent path cached
        // between batches, so most lookups restart at the bottom level.
        let list = built(hints, fingers, prefetch, false, RANGE as u64 / 2);
        let mut h = list.handle();
        let mut rng = SplitMix64::new(0x5EED);
        let mut out: Vec<BatchReply> = Vec::with_capacity(BATCH);
        g.bench_function(format!("get_band_{name}"), |b| {
            b.iter(|| {
                let lo = rng.below((RANGE - BAND) as u64) as u32 + 1;
                let ops: Vec<BatchOp> = (0..BATCH)
                    .map(|_| BatchOp::Get(lo + rng.below(BAND as u64) as u32))
                    .collect();
                out.clear();
                h.execute_batch_hinted(&ops, &mut out)
            })
        });

        // Reclamation churn: the split/merge/retire storm that invalidates
        // fingers, so this measures validation + partial-restart cost.
        const WINDOW: u32 = 4_096;
        let list = Gfsl::new(GfslParams {
            kernel: BallotKernel::Swar,
            hints,
            fingers,
            prefetch,
            reclaim: true,
            pool_chunks: GfslParams::chunks_for(WINDOW as u64 * 4, TeamSize::ThirtyTwo),
            ..Default::default()
        })
        .unwrap();
        let mut h = list.handle();
        for k in 1..=WINDOW {
            h.insert(k, k).unwrap();
        }
        let mut next = WINDOW + 1;
        g.bench_function(format!("churn_pair_{name}"), |b| {
            b.iter(|| {
                h.insert(next, next).unwrap();
                assert!(h.remove(next - WINDOW));
                next += 1;
            })
        });
    }

    // Flat-bottom engine on the same two shapes, through the KvEngine seam.
    let flat = FlatSkiplist::new(BallotKernel::Swar);
    let mut h = flat.handle();
    for k in Prefill::HalfRandom.keys(RANGE, 5) {
        h.insert(k, k);
    }
    let mut rng = SplitMix64::new(0x5EED);
    g.bench_function("get_band_flat", |b| {
        b.iter(|| {
            let lo = rng.below((RANGE - BAND) as u64) as u32 + 1;
            let mut found = 0u64;
            for _ in 0..BATCH {
                let k = lo + rng.below(BAND as u64) as u32;
                found += h.get(k).is_some() as u64;
            }
            found
        })
    });

    const WINDOW: u32 = 4_096;
    let flat = FlatSkiplist::new(BallotKernel::Swar);
    let mut h = flat.handle();
    for k in 1..=WINDOW {
        h.insert(k, k);
    }
    let mut next = WINDOW + 1;
    g.bench_function("churn_pair_flat", |b| {
        b.iter(|| {
            h.insert(next, next);
            assert!(h.remove(next - WINDOW));
            next += 1;
        })
    });

    g.finish();
}

criterion_group!(benches, bench_locality);
criterion_main!(benches);
