//! Plain-text table rendering and CSV/JSON dumps for experiment output.

use std::io::Write as _;
use std::path::Path;

/// A rendered experiment artifact: a titled table of string cells.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table {
    /// Title printed above the table (and used for file names).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row must be `headers.len()` long.
    pub rows: Vec<Vec<String>>,
    /// Structured sidecar data emitted under `"meta"` in the bench JSON
    /// (e.g. serialized per-shard stats); not rendered in the text table.
    pub attachments: Vec<(String, serde::Value)>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            attachments: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Attach a structured value under `key` in the table's bench-JSON
    /// `"meta"` object. Anything `serde::Serialize` works.
    pub fn attach(&mut self, key: impl Into<String>, value: &dyn serde::Serialize) {
        self.attachments.push((key.into(), value.serialize_value()));
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Write a CSV file next to the experiment outputs.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let name = self
            .title
            .to_lowercase()
            .replace(|c: char| !c.is_alphanumeric(), "_");
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// True when `s` is already a syntactically valid JSON number (so a cell
/// can be emitted unquoted and machine readers get real numbers).
fn is_json_number(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    if i < b.len() && b[i] == b'-' {
        i += 1;
    }
    let int_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    if i == int_start || (b[int_start] == b'0' && i > int_start + 1) {
        return false; // no digits, or leading zero
    }
    if i < b.len() && b[i] == b'.' {
        i += 1;
        let frac_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == frac_start {
            return false;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        i += 1;
        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
            i += 1;
        }
        let exp_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == exp_start {
            return false;
        }
    }
    i == b.len()
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_cell(s: &str) -> String {
    if is_json_number(s) {
        s.to_string()
    } else {
        format!("\"{}\"", json_escape(s))
    }
}

/// Write every table of one experiment as machine-readable benchmark JSON
/// (`BENCH_<experiment>.json`), so the perf trajectory is trackable across
/// PRs without scraping text tables. Numeric cells are emitted as JSON
/// numbers; everything else as strings. Cell typing is sniffed from the
/// rendered strings, so the writer stays hand-rolled; table
/// [`attachments`](Table::attachments) carry structured values through the
/// vendored shim's `serde::Value` tree under a per-table `"meta"` key.
pub fn write_bench_json(
    dir: &Path,
    experiment: &str,
    tables: &[Table],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let name: String = experiment
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"experiment\": \"{}\",\n", json_escape(experiment)));
    body.push_str("  \"tables\": [\n");
    for (ti, t) in tables.iter().enumerate() {
        body.push_str("    {\n");
        body.push_str(&format!("      \"title\": \"{}\",\n", json_escape(&t.title)));
        body.push_str(&format!(
            "      \"headers\": [{}],\n",
            t.headers
                .iter()
                .map(|h| format!("\"{}\"", json_escape(h)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        body.push_str("      \"rows\": [\n");
        for (ri, row) in t.rows.iter().enumerate() {
            body.push_str(&format!(
                "        [{}]{}\n",
                row.iter().map(|c| json_cell(c)).collect::<Vec<_>>().join(", "),
                if ri + 1 < t.rows.len() { "," } else { "" }
            ));
        }
        body.push_str("      ]");
        if !t.attachments.is_empty() {
            let meta = serde::Value::Object(t.attachments.clone());
            body.push_str(&format!(",\n      \"meta\": {}", meta.to_json()));
        }
        body.push('\n');
        body.push_str(&format!(
            "    }}{}\n",
            if ti + 1 < tables.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Format MOPS with sensible precision.
pub fn mops(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a ratio like "6.8x".
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["range", "mops"]);
        t.row(vec!["10K".into(), "65.7".into()]);
        t.row(vec!["100M".into(), "3.2".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("range"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "aligned rows");
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("Fig 5.3 (a)", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("gfsl_report_test");
        let path = t.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("fig_5_3"));
    }

    #[test]
    fn json_number_detection_is_strict() {
        for ok in ["0", "-1", "10000", "3.25", "-0.5", "1e5", "6.02E+23", "1.5e-3"] {
            assert!(is_json_number(ok), "{ok} should be a JSON number");
        }
        for bad in [
            "", "-", "1.", ".5", "01", "1e", "1e+", "NaN", "inf", "+5", "1.00x", "48.8%", "10K",
            "0x10",
        ] {
            assert!(!is_json_number(bad), "{bad} must be quoted");
        }
    }

    #[test]
    fn bench_json_is_written_and_typed() {
        let mut t = Table::new("Serve \"anchor\"", &["policy", "mops", "ratio"]);
        t.row(vec!["fifo".into(), "12.5".into(), "0.97x".into()]);
        t.row(vec!["sharded".into(), "13".into(), "1.01x".into()]);
        let dir = std::env::temp_dir().join("gfsl_bench_json_test");
        let path = write_bench_json(&dir, "serve", &[t]).unwrap();
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), "BENCH_serve.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"experiment\": \"serve\""));
        assert!(body.contains("\\\"anchor\\\""), "titles are escaped: {body}");
        assert!(body.contains("[\"fifo\", 12.5, \"0.97x\"]"), "{body}");
        assert!(body.contains("[\"sharded\", 13, \"1.01x\"]"), "{body}");
        // Balanced braces/brackets as a cheap well-formedness check.
        let balance = |open: char, close: char| {
            body.chars().filter(|&c| c == open).count()
                == body.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn attachments_land_under_meta() {
        let mut t = Table::new("Cluster", &["shards", "mops"]);
        t.row(vec!["4".into(), "12.5".into()]);
        t.attach("shard_stats", &vec![(1u32, 2u32), (3, 4)]);
        t.attach("note", &"hot".to_string());
        let dir = std::env::temp_dir().join("gfsl_bench_meta_test");
        let path = write_bench_json(&dir, "cluster", &[t]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(
            body.contains("\"meta\": {\"shard_stats\":[[1,2],[3,4]],\"note\":\"hot\"}"),
            "{body}"
        );
        let balance = |open: char, close: char| {
            body.chars().filter(|&c| c == open).count()
                == body.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn formatters() {
        assert_eq!(mops(123.4), "123");
        assert_eq!(mops(65.71), "65.7");
        assert_eq!(mops(3.234), "3.23");
        assert_eq!(ratio(6.8123), "6.81x");
        assert_eq!(pct(0.488), "48.8%");
    }
}
