//! Protocol robustness: the frame decoder must answer arbitrary bytes —
//! truncated, oversized, bit-flipped, or garbage — with a typed
//! [`DecodeError`], never a panic and never unbounded buffering; and the
//! server must shed a misbehaving connection with one typed `Proto` frame.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gfsl::{Gfsl, GfslParams};
use gfsl_edge::proto::{self, DecodeError, Req, Resp};
use gfsl_edge::{EdgeConfig, EdgeEngine, EdgeServer};
use proptest::prelude::*;

fn req_strategy() -> impl Strategy<Value = Req> {
    prop_oneof![
        Just(Req::Ping),
        any::<u32>().prop_map(Req::Get),
        (any::<u32>(), any::<u32>()).prop_map(|(k, v)| Req::Insert(k, v)),
        any::<u32>().prop_map(Req::Delete),
        (any::<u32>(), any::<u32>()).prop_map(|(lo, hi)| Req::Range(lo, hi)),
        Just(Req::MinEntry),
        Just(Req::PopMin),
        (any::<u32>(), any::<u32>()).prop_map(|(lo, hi)| Req::SnapRange(lo, hi)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary bytes never panic the request decoder, and consumed
    /// lengths stay inside the buffer.
    #[test]
    fn arbitrary_bytes_never_panic_decode(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        match proto::decode_req(&bytes) {
            Ok((_, _, used)) => prop_assert!(used <= bytes.len()),
            Err(e) => prop_assert!(e.code() <= 8, "typed error, stable code"),
        }
        match proto::decode_resp(&bytes) {
            Ok((_, _, used)) => prop_assert!(used <= bytes.len()),
            Err(e) => prop_assert!(e.code() <= 8),
        }
    }

    /// Every well-formed request round-trips, and every strict prefix of
    /// its encoding reports `Incomplete` — never a false decode.
    #[test]
    fn requests_roundtrip_and_prefixes_are_incomplete(
        req in req_strategy(),
        id in any::<u64>(),
    ) {
        let mut buf = Vec::new();
        req.encode(id, &mut buf);
        let (got_id, got, used) = proto::decode_req(&buf).unwrap();
        prop_assert_eq!((got_id, got, used), (id, req, buf.len()));
        for cut in 0..buf.len() {
            prop_assert_eq!(proto::decode_req(&buf[..cut]).unwrap_err(), DecodeError::Incomplete);
        }
    }

    /// A single flipped bit in a valid frame either still decodes (the
    /// flip landed in a key/value/id payload) or fails typed — and a
    /// corrupted length can never demand more than `MAX_PAYLOAD` bytes.
    #[test]
    fn bit_flips_fail_typed_or_stay_bounded(
        req in req_strategy(),
        id in any::<u64>(),
        flip_byte in 0usize..32,
        flip_bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        req.encode(id, &mut buf);
        let i = flip_byte % buf.len();
        buf[i] ^= 1 << flip_bit;
        match proto::decode_req(&buf) {
            Ok((_, _, used)) => prop_assert!(used <= buf.len()),
            Err(DecodeError::Incomplete) => {
                // The flip enlarged the length field; the claim must stay
                // within the protocol's hard payload bound.
                let claimed = u16::from_le_bytes([buf[0], buf[1]]) as usize;
                prop_assert!(claimed <= proto::MAX_PAYLOAD);
            }
            Err(e) => prop_assert!(e.code() >= 1 && e.code() <= 8),
        }
    }

    /// Oversized length claims are rejected from the header alone.
    #[test]
    fn oversized_lengths_reject_immediately(len in (proto::MAX_PAYLOAD as u16 + 1)..u16::MAX) {
        let bytes = len.to_le_bytes();
        prop_assert_eq!(proto::decode_req(&bytes).unwrap_err(), DecodeError::Oversized(len));
    }
}

/// Feeding the live server garbage after a valid handshake yields one
/// typed `Proto` frame and a close — for a whole gallery of malformations.
#[test]
fn server_sheds_each_malformation_with_a_typed_frame() {
    let engine = EdgeEngine::Single(Arc::new(Gfsl::new(GfslParams::default()).unwrap()));
    let server = EdgeServer::start(engine, EdgeConfig::default()).unwrap();

    let valid = {
        let mut b = Vec::new();
        Req::Get(1).encode(1, &mut b);
        b
    };
    let cases: Vec<(Vec<u8>, u8)> = vec![
        // Oversized length claim.
        (u16::MAX.to_le_bytes().to_vec(), DecodeError::Oversized(u16::MAX).code()),
        // Runt length claim.
        ({
            let mut b = 3u16.to_le_bytes().to_vec();
            b.extend_from_slice(&[0; 3]);
            b
        }, DecodeError::Runt(3).code()),
        // Unknown tag.
        ({
            let mut b = valid.clone();
            b[2] = 0x5A;
            b
        }, DecodeError::BadTag(0x5A).code()),
        // Trailing bytes inside the declared length.
        ({
            let mut b = Vec::new();
            Req::Ping.encode(1, &mut b);
            b[0] = 10;
            b.push(0xFF);
            b
        }, DecodeError::Trailing(0).code()),
    ];

    for (i, (garbage, expect_code)) in cases.into_iter().enumerate() {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut hello = Vec::new();
        proto::encode_hello(&mut hello);
        s.write_all(&hello).unwrap();
        let mut server_hello = [0u8; proto::HELLO_LEN];
        s.read_exact(&mut server_hello).unwrap();
        s.write_all(&garbage).unwrap();

        let mut buf = Vec::new();
        let mut chunk = [0u8; 256];
        loop {
            match s.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("case {i}: expected clean close, got {e}"),
            }
        }
        let (_, resp, used) = proto::decode_resp(&buf).unwrap();
        match resp {
            Resp::Proto { code } => assert_eq!(code, expect_code, "case {i}"),
            other => panic!("case {i}: expected Proto frame, got {other:?}"),
        }
        assert_eq!(used, buf.len(), "case {i}: exactly one final frame");
    }

    // A bad handshake is also a typed shed, before any framing.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"NOPEnope").unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 256];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("handshake case: expected clean close, got {e}"),
        }
    }
    // Server hello first, then the Proto frame.
    proto::check_hello(&buf[..proto::HELLO_LEN]).unwrap();
    let (_, resp, _) = proto::decode_resp(&buf[proto::HELLO_LEN..]).unwrap();
    assert_eq!(resp, Resp::Proto { code: DecodeError::BadMagic.code() });

    let stats = server.shutdown();
    assert_eq!(stats.proto_errors, 5, "four framing cases + one handshake");
    assert_eq!(stats.ops_ok, 0, "no garbage ever reached the engine");
}
