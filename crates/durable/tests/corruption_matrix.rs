//! The corruption matrix: every class of on-disk damage, each failing
//! *safe* — either repaired with nothing acknowledged lost, or refused
//! with a typed error. No cell may silently drop data.
//!
//! | damage                                   | verdict                   |
//! |------------------------------------------|---------------------------|
//! | torn final record (partial frame)        | truncate and recover      |
//! | bit-flipped record body, mid-log         | refuse: `Corrupt`         |
//! | bit-flipped final record, nothing after  | truncate and recover*     |
//! | truncated final segment header           | remove segment, recover   |
//! | bit-flipped non-final segment header     | refuse: `BadSegmentHeader`|
//! | stale checkpoint over pruned WAL         | refuse: `WalGap`          |
//! | deleted mid-log segment                  | refuse: `WalGap`          |
//! | bit-flipped checkpoint page              | fall back to previous     |
//! | bit-flipped checkpoint manifest          | fall back to previous     |
//!
//! *A damaged final record with no valid record after it is byte-for-byte
//! indistinguishable from a torn write, and a torn write's record was
//! never acknowledged (the ack waits for the sync that never finished) —
//! so truncation is the only sound answer, the same call PostgreSQL makes.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::PathBuf;

use gfsl_durable::ckpt;
use gfsl_durable::wal::{encode_record, segment_path, RECORD_BYTES, SEG_HEADER_BYTES};
use gfsl_durable::{destroy, DurableConfig, DurableGfsl, RecoverError, WalOp};

fn cfg(name: &str) -> DurableConfig {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("gfsl_cmx_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    DurableConfig {
        seg_records: 10,
        ..DurableConfig::new(dir)
    }
}

/// Engine with 30 acked writes (keys 1..=30), LSNs 1..=30 over 3 segments.
fn seeded(cfg: &DurableConfig) -> Vec<(u32, u32)> {
    let mut eng = DurableGfsl::create(cfg).unwrap();
    for k in 1..=30u32 {
        assert!(eng.insert(k, k * 10).unwrap());
    }
    (1..=30u32).map(|k| (k, k * 10)).collect()
}

fn reopen_expecting_pairs(cfg: &DurableConfig, expect: &[(u32, u32)]) -> gfsl_durable::RecoveryReport {
    let (eng, report) = DurableGfsl::open(cfg).expect("recovery must succeed");
    let got: Vec<(u32, u32)> = eng.list().export_pairs().collect();
    assert_eq!(got, expect, "acknowledged writes must all survive");
    eng.list().assert_valid();
    report
}

#[test]
fn torn_final_record_is_truncated_and_acked_writes_survive() {
    let cfg = cfg("torn");
    let expect = seeded(&cfg);
    // 13 bytes of a 31st record: a write(2) the crash cut short.
    let frame = encode_record(31, WalOp::Put { key: 99, val: 1 });
    OpenOptions::new()
        .append(true)
        .open(segment_path(&cfg.wal_dir(), 2))
        .unwrap()
        .write_all(&frame[..13])
        .unwrap();
    let report = reopen_expecting_pairs(&cfg, &expect);
    assert_eq!(report.truncated_bytes, 13);
    destroy(&cfg.dir).unwrap();
}

#[test]
fn bit_flipped_mid_log_record_refuses_with_corrupt() {
    let cfg = cfg("midflip");
    seeded(&cfg);
    // Flip a value byte of the 2nd record of segment 1 (lsns 11..20):
    // acknowledged records follow it, so truncation would lose them.
    let path = segment_path(&cfg.wal_dir(), 1);
    let mut bytes = fs::read(&path).unwrap();
    bytes[SEG_HEADER_BYTES + RECORD_BYTES + 20] ^= 0x04;
    fs::write(&path, &bytes).unwrap();
    match DurableGfsl::open(&cfg) {
        Err(RecoverError::Corrupt { file, offset, .. }) => {
            assert_eq!(file, path);
            assert_eq!(offset, (SEG_HEADER_BYTES + RECORD_BYTES) as u64);
        }
        other => panic!("expected Corrupt refusal, got {other:?}"),
    }
    destroy(&cfg.dir).unwrap();
}

#[test]
fn bit_flipped_final_record_truncates_like_a_torn_write() {
    let cfg = cfg("tailflip");
    let mut expect = seeded(&cfg);
    // Flip a byte of the LAST record (lsn 30, no valid record after it):
    // indistinguishable from a torn write, so it truncates — and key 30's
    // write is the one whose ack the crash raced.
    let path = segment_path(&cfg.wal_dir(), 2);
    let mut bytes = fs::read(&path).unwrap();
    let last_off = bytes.len() - RECORD_BYTES;
    bytes[last_off + 5] ^= 0x80;
    fs::write(&path, &bytes).unwrap();
    expect.pop(); // key 30 is gone — torn, never safely acknowledged
    let report = reopen_expecting_pairs(&cfg, &expect);
    assert_eq!(report.truncated_bytes, RECORD_BYTES as u64);
    destroy(&cfg.dir).unwrap();
}

#[test]
fn truncated_final_segment_header_is_removed() {
    let cfg = cfg("hdrcut");
    let expect = seeded(&cfg);
    // A 7-byte file where segment 4's header was being written.
    fs::write(segment_path(&cfg.wal_dir(), 3), [0x47u8; 7]).unwrap();
    let report = reopen_expecting_pairs(&cfg, &expect);
    assert_eq!(report.removed_torn_segments, 1);
    destroy(&cfg.dir).unwrap();
}

#[test]
fn bit_flipped_interior_segment_header_refuses() {
    let cfg = cfg("hdrflip");
    seeded(&cfg);
    let path = segment_path(&cfg.wal_dir(), 1);
    let mut bytes = fs::read(&path).unwrap();
    bytes[17] ^= 0x01; // base_lsn byte: header CRC now fails
    fs::write(&path, &bytes).unwrap();
    match DurableGfsl::open(&cfg) {
        Err(RecoverError::BadSegmentHeader { file, .. }) => assert_eq!(file, path),
        other => panic!("expected BadSegmentHeader refusal, got {other:?}"),
    }
    destroy(&cfg.dir).unwrap();
}

#[test]
fn deleted_mid_log_segment_refuses_with_gap() {
    let cfg = cfg("seggap");
    seeded(&cfg);
    fs::remove_file(segment_path(&cfg.wal_dir(), 1)).unwrap();
    match DurableGfsl::open(&cfg) {
        Err(RecoverError::WalGap {
            need_from,
            first_available,
        }) => {
            assert_eq!(need_from, 11, "segment 0 ends at lsn 10");
            assert_eq!(first_available, 21, "segment 2 starts at lsn 21");
        }
        other => panic!("expected WalGap refusal, got {other:?}"),
    }
    destroy(&cfg.dir).unwrap();
}

#[test]
fn stale_checkpoint_over_pruned_wal_refuses_with_gap() {
    // Retain only one checkpoint: once its successor's manifest is gone,
    // nothing anchors the pruned log.
    let cfg = DurableConfig {
        ckpt_keep: 1,
        ..cfg("stale")
    };
    let mut eng = DurableGfsl::create(&cfg).unwrap();
    for k in 1..=30u32 {
        eng.insert(k, k).unwrap();
    }
    eng.checkpoint().unwrap(); // ckpt 1 @ cut 30, segments 0..2 pruned
    for k in 31..=45u32 {
        eng.insert(k, k).unwrap();
    }
    eng.checkpoint().unwrap(); // ckpt 2 @ cut 45, more pruning
    drop(eng);
    // Checkpoint 2's manifest is destroyed, and with ckpt_keep = 1 there
    // is no older checkpoint to fall back to — but checkpoint 2's
    // publication already pruned the WAL it covered. Serving would
    // silently forget acked writes — refuse instead.
    fs::remove_file(ckpt::manifest_path(&cfg.ckpt_dir(), 2)).unwrap();
    match DurableGfsl::open(&cfg) {
        Err(RecoverError::WalGap { need_from, .. }) => assert_eq!(need_from, 1),
        other => panic!("expected WalGap refusal, got {other:?}"),
    }
    destroy(&cfg.dir).unwrap();
}

#[test]
fn damaged_newest_checkpoint_falls_back_and_replays() {
    let cfg = cfg("ckptflip");
    let mut eng = DurableGfsl::create(&cfg).unwrap();
    for k in 1..=20u32 {
        eng.insert(k, k).unwrap();
    }
    eng.checkpoint().unwrap(); // ckpt 1 @ cut 20
    for k in 21..=35u32 {
        eng.insert(k, k).unwrap();
    }
    eng.checkpoint().unwrap(); // ckpt 2 @ cut 35
    for k in 36..=40u32 {
        eng.insert(k, k).unwrap();
    }
    drop(eng);
    // Flip a byte in checkpoint 2's data page. Fallback to checkpoint 1
    // works because ckpt 2's pruning kept the active segment, which under
    // these sizes still reaches back to cut 20's successor.
    let path = ckpt::data_path(&cfg.ckpt_dir(), 2);
    let mut bytes = fs::read(&path).unwrap();
    bytes[100] ^= 0x01;
    fs::write(&path, &bytes).unwrap();

    let (eng, report) = DurableGfsl::open(&cfg).expect("fallback must recover");
    assert_eq!(report.checkpoint_seq, Some(1));
    assert_eq!(report.checkpoint_fallbacks.len(), 1);
    assert_eq!(report.recovered_keys, 40, "every acked write survives");
    eng.list().assert_valid();
    destroy(&cfg.dir).unwrap();
}

#[test]
fn bit_flipped_manifest_falls_back() {
    let cfg = cfg("manflip");
    let mut eng = DurableGfsl::create(&cfg).unwrap();
    for k in 1..=20u32 {
        eng.insert(k, k).unwrap();
    }
    eng.checkpoint().unwrap();
    for k in 21..=28u32 {
        eng.insert(k, k).unwrap();
    }
    eng.checkpoint().unwrap();
    drop(eng);
    let path = ckpt::manifest_path(&cfg.ckpt_dir(), 2);
    let mut bytes = fs::read(&path).unwrap();
    bytes[9] ^= 0x40;
    fs::write(&path, &bytes).unwrap();

    let (_, report) = DurableGfsl::open(&cfg).expect("fallback must recover");
    assert_eq!(report.checkpoint_seq, Some(1));
    assert_eq!(report.recovered_keys, 28);
    destroy(&cfg.dir).unwrap();
}
