//! Request sources: the driver's pull interface over arrival processes.
//!
//! The service driver is a virtual-time event loop; it asks the source
//! *when* the next request arrives ([`RequestSource::peek_ns`]), takes it
//! when the epoch window covers that instant, and feeds completions back
//! ([`RequestSource::on_complete`]) so closed-loop clients can schedule
//! their next issue. Shed requests are returned to the source, which
//! decides the client's reaction (open-loop clients drop; closed-loop
//! clients back off and retry).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use gfsl_workload::{ClosedLoop, OpenLoop};

use crate::request::{Request, Response};

/// Min-queue of (issue time, client) with a monotone fast path.
///
/// Closed-loop issue times mostly arrive in nondecreasing order: the driver
/// completes epochs in virtual-time order, and with zero think time every
/// completion reschedules at exactly the epoch's done time. Those pushes
/// append to a ring buffer in O(1); only an out-of-order time (a random
/// think draw landing before an already queued issue) pays for the heap.
/// Ties are served in push order from the ring, then from the heap.
struct DueQueue {
    fifo: VecDeque<(u64, u32)>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl DueQueue {
    fn new() -> DueQueue {
        DueQueue {
            fifo: VecDeque::new(),
            heap: BinaryHeap::new(),
        }
    }

    fn push(&mut self, t: u64, c: u32) {
        match self.fifo.back() {
            Some(&(back_t, _)) if t < back_t => self.heap.push(Reverse((t, c))),
            _ => self.fifo.push_back((t, c)),
        }
    }

    fn peek(&self) -> Option<u64> {
        match (self.fifo.front(), self.heap.peek()) {
            (Some(&(ft, _)), Some(&Reverse((ht, _)))) => Some(ft.min(ht)),
            (Some(&(ft, _)), None) => Some(ft),
            (None, Some(&Reverse((ht, _)))) => Some(ht),
            (None, None) => None,
        }
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let from_heap = match (self.fifo.front(), self.heap.peek()) {
            (Some(&(ft, _)), Some(&Reverse((ht, _)))) => ht < ft,
            (None, Some(_)) => true,
            _ => false,
        };
        if from_heap {
            self.heap.pop().map(|Reverse(e)| e)
        } else {
            self.fifo.pop_front()
        }
    }

    fn is_empty(&self) -> bool {
        self.fifo.is_empty() && self.heap.is_empty()
    }
}

/// A stream of timed requests with completion feedback.
pub trait RequestSource {
    /// Virtual arrival time of the next pending request, if any.
    fn peek_ns(&mut self) -> Option<u64>;

    /// Take the next pending request (must follow a `Some` peek).
    fn take(&mut self) -> Request;

    /// A response was delivered to its client.
    fn on_complete(&mut self, resp: &Response);

    /// A request was shed at admission, at virtual time `now_ns`.
    fn on_shed(&mut self, req: Request, now_ns: u64);

    /// True when the source will never yield another request.
    fn exhausted(&self) -> bool;
}

/// Open-loop source: arrivals fire on schedule regardless of completions;
/// shed requests are dropped (the client gave up).
pub struct OpenSource {
    inner: OpenLoop,
    lookahead: Option<gfsl_workload::Arrival>,
    next_id: u64,
    /// Requests dropped after shedding (clients that gave up).
    pub dropped: u64,
}

impl OpenSource {
    /// Wrap an open-loop arrival process.
    pub fn new(inner: OpenLoop) -> OpenSource {
        OpenSource {
            inner,
            lookahead: None,
            next_id: 0,
            dropped: 0,
        }
    }
}

impl RequestSource for OpenSource {
    fn peek_ns(&mut self) -> Option<u64> {
        if self.lookahead.is_none() {
            self.lookahead = self.inner.next();
        }
        self.lookahead.as_ref().map(|a| a.at_ns)
    }

    fn take(&mut self) -> Request {
        let a = self.lookahead.take().expect("take() without a pending peek");
        let id = self.next_id;
        self.next_id += 1;
        Request {
            client: a.client,
            id,
            arrival_ns: a.at_ns,
            op: a.op,
        }
    }

    fn on_complete(&mut self, _resp: &Response) {}

    fn on_shed(&mut self, _req: Request, _now_ns: u64) {
        self.dropped += 1;
    }

    fn exhausted(&self) -> bool {
        self.lookahead.is_none() && self.inner.remaining() == 0
    }
}

/// Replay source: an explicit pre-materialized timed script, open-loop
/// semantics (arrivals fire on schedule; shed requests are dropped).
///
/// This is the handle a sharded front end uses to reuse the whole pipeline
/// per shard: partition one global arrival stream by key range and run one
/// `serve` loop per partition (see `gfsl-cluster`). Arrivals are sorted by
/// time on construction, so partitions of an ordered stream stay valid.
pub struct ReplaySource {
    arrivals: std::vec::IntoIter<gfsl_workload::Arrival>,
    lookahead: Option<gfsl_workload::Arrival>,
    next_id: u64,
    /// Requests dropped after shedding (clients that gave up).
    pub dropped: u64,
}

impl ReplaySource {
    /// Wrap an explicit arrival script.
    pub fn new(mut arrivals: Vec<gfsl_workload::Arrival>) -> ReplaySource {
        arrivals.sort_by_key(|a| a.at_ns);
        ReplaySource {
            arrivals: arrivals.into_iter(),
            lookahead: None,
            next_id: 0,
            dropped: 0,
        }
    }
}

impl RequestSource for ReplaySource {
    fn peek_ns(&mut self) -> Option<u64> {
        if self.lookahead.is_none() {
            self.lookahead = self.arrivals.next();
        }
        self.lookahead.as_ref().map(|a| a.at_ns)
    }

    fn take(&mut self) -> Request {
        let a = self.lookahead.take().expect("take() without a pending peek");
        let id = self.next_id;
        self.next_id += 1;
        Request {
            client: a.client,
            id,
            arrival_ns: a.at_ns,
            op: a.op,
        }
    }

    fn on_complete(&mut self, _resp: &Response) {}

    fn on_shed(&mut self, _req: Request, _now_ns: u64) {
        self.dropped += 1;
    }

    fn exhausted(&self) -> bool {
        self.lookahead.is_none() && self.arrivals.as_slice().is_empty()
    }
}

/// Closed-loop source: each client keeps one request outstanding; a
/// completion schedules the client's next issue after its think time, and
/// a shed request is retried after a backoff.
pub struct ClosedSource {
    clients: ClosedLoop,
    /// Clients due to issue, keyed by issue time.
    due: DueQueue,
    /// A shed request awaiting retry, per client.
    retry: Vec<Option<Request>>,
    /// Requests taken and not yet completed or handed back by a shed.
    outstanding: u64,
    next_id: u64,
    shed_backoff_ns: u64,
    /// Shed→retry events observed (each shed request is retried, not lost).
    pub retries: u64,
}

impl ClosedSource {
    /// Wrap a closed-loop population; every client's first issue is
    /// scheduled after one think-time draw (staggered start). Shed requests
    /// retry after `shed_backoff_ns` (clamped to at least 1 ns so retries
    /// always make forward progress in virtual time).
    pub fn new(mut clients: ClosedLoop, shed_backoff_ns: u64) -> ClosedSource {
        let mut due = DueQueue::new();
        for (c, s) in clients.streams.iter_mut().enumerate() {
            if s.remaining() > 0 {
                due.push(s.think_ns(), c as u32);
            }
        }
        let n = clients.streams.len();
        ClosedSource {
            clients,
            due,
            retry: vec![None; n],
            outstanding: 0,
            next_id: 0,
            shed_backoff_ns: shed_backoff_ns.max(1),
            retries: 0,
        }
    }
}

impl RequestSource for ClosedSource {
    fn peek_ns(&mut self) -> Option<u64> {
        self.due.peek()
    }

    fn take(&mut self) -> Request {
        let (t, c) = self.due.pop().expect("take() without a pending peek");
        self.outstanding += 1;
        if let Some(mut req) = self.retry[c as usize].take() {
            req.arrival_ns = t;
            return req;
        }
        let op = self.clients.streams[c as usize]
            .next_op()
            .expect("due client has an exhausted script");
        let id = self.next_id;
        self.next_id += 1;
        Request {
            client: c,
            id,
            arrival_ns: t,
            op,
        }
    }

    fn on_complete(&mut self, resp: &Response) {
        self.outstanding = self.outstanding.saturating_sub(1);
        let c = resp.client as usize;
        if self.clients.streams[c].remaining() > 0 {
            let think = self.clients.streams[c].think_ns();
            self.due
                .push(resp.done_ns.saturating_add(think), resp.client);
        }
    }

    fn on_shed(&mut self, req: Request, now_ns: u64) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.retries += 1;
        let c = req.client;
        self.retry[c as usize] = Some(req);
        self.due
            .push(now_ns.saturating_add(self.shed_backoff_ns), c);
    }

    fn exhausted(&self) -> bool {
        self.due.is_empty() && self.outstanding == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfsl_workload::{ServeMix, ServeOp};

    #[test]
    fn open_source_ids_are_monotone_and_times_ordered() {
        let mut s = OpenSource::new(OpenLoop::new(ServeMix::C80, 1000, 4, 100, 1.0, 3));
        let mut last_t = 0;
        for expect_id in 0..100u64 {
            let t = s.peek_ns().unwrap();
            assert!(t >= last_t);
            last_t = t;
            let r = s.take();
            assert_eq!(r.id, expect_id);
            assert_eq!(r.arrival_ns, t);
        }
        assert!(s.peek_ns().is_none());
        assert!(s.exhausted());
    }

    #[test]
    fn replay_source_sorts_its_script_and_drops_sheds() {
        use gfsl_workload::Arrival;
        let mut s = ReplaySource::new(vec![
            Arrival {
                at_ns: 300,
                client: 1,
                op: ServeOp::Get(7),
            },
            Arrival {
                at_ns: 100,
                client: 0,
                op: ServeOp::Insert(3, 3),
            },
        ]);
        assert_eq!(s.peek_ns(), Some(100), "script is replayed in time order");
        let first = s.take();
        assert_eq!((first.client, first.op), (0, ServeOp::Insert(3, 3)));
        assert!(!s.exhausted());
        assert_eq!(s.peek_ns(), Some(300));
        let second = s.take();
        assert_eq!(second.arrival_ns, 300);
        s.on_shed(second, 400);
        assert_eq!(s.dropped, 1, "replay sheds drop, open-loop style");
        assert!(s.exhausted());
    }

    #[test]
    fn closed_source_keeps_one_outstanding_per_client() {
        let pop = ClosedLoop::new(2, 3, 100, ServeMix::C80, 1000, 7);
        let mut s = ClosedSource::new(pop, 50);
        // Both clients due once; no more issues until completions arrive.
        let a = s.take();
        let b = s.take();
        assert_ne!(a.client, b.client);
        assert!(s.peek_ns().is_none(), "both clients are outstanding");
        assert!(!s.exhausted(), "…but more work comes after completions");
        // Completing client a schedules its next issue after its think.
        let resp = Response {
            client: a.client,
            id: a.id,
            arrival_ns: a.arrival_ns,
            wait_ns: 0,
            done_ns: 500,
            reply: crate::request::Reply::Got(None),
        };
        s.on_complete(&resp);
        let t = s.peek_ns().expect("client rescheduled");
        assert!(t >= 500, "next issue is after completion: {t}");
        let a2 = s.take();
        assert_eq!(a2.client, a.client);
    }

    #[test]
    fn closed_source_retries_shed_requests_later() {
        let pop = ClosedLoop::new(1, 2, 0, ServeMix::C80, 1000, 9);
        let mut s = ClosedSource::new(pop, 250);
        let r = s.take();
        let op = r.op;
        s.on_shed(r, 1_000);
        assert_eq!(s.retries, 1);
        let t = s.peek_ns().unwrap();
        assert_eq!(t, 1_250, "retry lands after the backoff");
        let retried = s.take();
        assert_eq!(retried.op, op, "the same request is retried");
        assert_eq!(retried.arrival_ns, 1_250, "re-issued at the retry time");
    }

    #[test]
    fn closed_source_exhausts_after_scripts_finish() {
        let pop = ClosedLoop::new(1, 1, 0, ServeMix::C80, 1000, 5);
        let mut s = ClosedSource::new(pop, 1);
        let r = s.take();
        assert!(matches!(
            r.op,
            ServeOp::Get(_) | ServeOp::Insert(..) | ServeOp::Delete(_)
        ));
        let resp = Response {
            client: 0,
            id: r.id,
            arrival_ns: r.arrival_ns,
            wait_ns: 0,
            done_ns: 10,
            reply: crate::request::Reply::Got(None),
        };
        s.on_complete(&resp);
        assert!(s.exhausted(), "single-op script is done after completion");
    }
}
