//! Chaos recovery soak: crash-containment end to end, for every crash
//! point in the lock protocol.
//!
//! For each (crash point × seed) cell, two contending workers run a mixed
//! insert/remove/get workload in containment mode while the chaos layer
//! kills one operation at the seeded occurrence of the target crash point.
//! The dead op's chunks land in quarantine; the surviving worker keeps
//! operating around them (aborting with typed `Quarantined` errors where it
//! must). After the run, online repair drains the quarantine, and the cell
//! passes only if
//!
//! 1. every structural invariant validates clean (`Gfsl::validate`),
//! 2. no acknowledged operation is lost and every crashed op either fully
//!    happened or not at all — checked by a per-key linearizability search
//!    over the recorded history (crashed ops enter as `InsertMaybe` /
//!    `RemoveMaybe`, final sequential gets pin the end state),
//! 3. the quarantine is empty and stays empty.
//!
//! Seeds per point come from `GFSL_SOAK_SEEDS` (default 4; CI runs 32), and
//! `GFSL_SOAK_STATS=<path>` dumps per-cell repair/abort statistics for the
//! CI artifact.

use std::collections::HashMap;
use std::sync::Once;

use gfsl::chaos::{ChaosController, ChaosOptions, LOCK_CRASH_POINTS};
use gfsl::history::{check_linearizable, HistoryClock, OpAction, Recorder};
use gfsl::{AbortReason, CrashPoint, Error, Gfsl, GfslParams, TeamSize};
use gfsl_rng::SplitMix64;

const KEY_SPACE: u32 = 110;
const OPS_PER_WORKER: usize = 120;
const WORKERS: usize = 2;

/// Silence the default panic hook for *injected* unwinds: the chaos layer's
/// `String` payloads and the containment layer's typed abort signals (the
/// only non-string payloads this suite produces). Real assertion failures
/// still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.as_str()));
            let injected = match msg {
                Some(m) => m.starts_with("chaos: injected"),
                None => true, // typed AbortSignal payloads
            };
            if !injected {
                prev(info);
            }
        }));
    });
}

fn soak_seeds() -> u64 {
    std::env::var("GFSL_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

#[derive(Debug, Default)]
struct CellStats {
    crashed_ops: u64,
    aborts: u64,
    chunks_quarantined: u64,
    repaired_forward: u64,
    repaired_back: u64,
    unpoisoned_clean: u64,
    downptr_repairs: u64,
}

/// One soak cell: seeded run, crash at `point`, repair, full verification.
/// Returns the cell's recovery statistics.
fn soak_cell(point: CrashPoint, seed: u64) -> CellStats {
    quiet_injected_panics();
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        contain: true,
        retry_budget: 1 << 20,
        ..Default::default()
    })
    .unwrap();
    // Prefill so removes and merges have something to chew on from turn one.
    {
        let mut h = list.handle();
        for k in (2..KEY_SPACE).step_by(2) {
            h.insert(k, k).unwrap();
        }
    }
    let occurrence = 1 + seed % 3;
    let ctl = ChaosController::new(
        WORKERS,
        ChaosOptions {
            panic_at: Some((point, occurrence)),
            max_stall_turns: 1,
            seed: seed ^ 0xD6E8_FEB8_6659_FD93,
            ..Default::default()
        },
    );

    let clock = HistoryClock::new();
    let histories: Vec<_> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..WORKERS)
            .map(|t| {
                let (list, ctl, clock) = (&list, &ctl, &clock);
                s.spawn(move || {
                    let mut rec = Recorder::new(clock);
                    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37) ^ t as u64);
                    let mut h = list.handle_with(ctl.probe(t));
                    for _ in 0..OPS_PER_WORKER {
                        let r = rng.next_u64();
                        let key = (r % u64::from(KEY_SPACE) + 1) as u32;
                        let value = (r >> 40) as u32 | 1;
                        let inv = rec.invoke();
                        match (r >> 32) % 5 {
                            0 | 1 => match h.try_insert(key, value) {
                                Ok(ok) => rec.finish(key, OpAction::Insert { value, ok }, inv),
                                Err(Error::Aborted(a)) => {
                                    if a.reason == AbortReason::Crashed {
                                        // Outcome unknown: repair may roll it
                                        // forward. The checker tries both.
                                        rec.finish(key, OpAction::InsertMaybe { value }, inv);
                                    }
                                    // Clean aborts (quarantined chunk, budget)
                                    // have no effect: no record.
                                }
                                Err(e) => panic!("insert({key}): unexpected error {e}"),
                            },
                            2 | 3 => match h.try_remove(key) {
                                Ok(ok) => rec.finish(key, OpAction::Remove { ok }, inv),
                                Err(Error::Aborted(a)) => {
                                    if a.reason == AbortReason::Crashed {
                                        rec.finish(key, OpAction::RemoveMaybe, inv);
                                    }
                                }
                                Err(e) => panic!("remove({key}): unexpected error {e}"),
                            },
                            _ => match h.try_get(key) {
                                Ok(found) => rec.finish(key, OpAction::Get { found }, inv),
                                Err(Error::Aborted(a)) => {
                                    assert_ne!(
                                        a.reason,
                                        AbortReason::Crashed,
                                        "lock-free gets cannot crash"
                                    );
                                }
                                Err(e) => panic!("get({key}): unexpected error {e}"),
                            },
                        }
                    }
                    rec.records
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker must survive (containment)"))
            .collect()
    });

    let fired = ctl
        .crash_point_hits()
        .into_iter()
        .find(|&(p, _)| p == point)
        .map(|(_, n)| n)
        .unwrap_or(0);

    // Online repair, then the three verdicts: structure valid, quarantine
    // empty, history linearizable.
    let stats = list.handle().repair_quarantine();
    assert_eq!(
        stats.quarantine_depth, 0,
        "[{point:?} seed {seed}] repair must drain the quarantine"
    );
    let violations = list.validate();
    assert!(
        violations.is_empty(),
        "[{point:?} seed {seed}] post-repair invariant violations: {violations:?}"
    );
    if stats.crashed_ops > 0 {
        assert!(
            fired >= occurrence,
            "[{point:?} seed {seed}] a crash implies the point fired"
        );
    }

    let mut records: Vec<_> = histories.into_iter().flatten().collect();
    {
        // Sequential reads on the same clock pin the post-repair state:
        // an acknowledged-then-lost write becomes a linearizability error.
        let mut rec = Recorder::new(&clock);
        let mut h = list.handle();
        for key in 1..=KEY_SPACE {
            let inv = rec.invoke();
            let found = h.try_get(key).expect("quiescent get cannot abort");
            rec.finish(key, OpAction::Get { found }, inv);
        }
        records.extend(rec.records);
    }
    let initial: HashMap<u32, u32> = (2..KEY_SPACE).step_by(2).map(|k| (k, k)).collect();
    if let Err(errors) = check_linearizable(&records, &initial) {
        panic!("[{point:?} seed {seed}] non-linearizable recovery: {errors:?}");
    }

    CellStats {
        crashed_ops: stats.crashed_ops,
        aborts: stats.aborts,
        chunks_quarantined: stats.chunks_quarantined,
        repaired_forward: stats.repaired_forward,
        repaired_back: stats.repaired_back,
        unpoisoned_clean: stats.unpoisoned_clean,
        downptr_repairs: stats.downptr_repairs,
    }
}

#[test]
fn recovery_soak_every_crash_point() {
    let seeds = soak_seeds();
    let mut report = String::from("point,seed,crashed_ops,aborts,quarantined,fwd,back,clean,downptr\n");
    for &point in LOCK_CRASH_POINTS.iter() {
        let mut crashes_for_point = 0u64;
        for seed in 0..seeds {
            let s = soak_cell(point, seed);
            crashes_for_point += s.crashed_ops;
            report.push_str(&format!(
                "{point:?},{seed},{},{},{},{},{},{},{}\n",
                s.crashed_ops,
                s.aborts,
                s.chunks_quarantined,
                s.repaired_forward,
                s.repaired_back,
                s.unpoisoned_clean,
                s.downptr_repairs
            ));
        }
        assert!(
            crashes_for_point > 0,
            "{point:?} never produced a contained crash in {seeds} seeds — \
             the soak is not exercising this window"
        );
    }
    if let Ok(path) = std::env::var("GFSL_SOAK_STATS") {
        std::fs::write(&path, &report).expect("write soak stats artifact");
    }
}
