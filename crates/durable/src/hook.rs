//! Failpoint plumbing: how the durability path joins the chaos harness.
//!
//! Every vulnerable instant in the WAL/checkpoint protocol calls
//! [`Failpoints::hit`] with its named [`CrashPoint`] — mid-append (torn
//! tail), pre-fsync, per checkpoint page, pre-rename, pre-prune. In
//! production ([`Failpoints::Off`]) the call is a no-op that inlines away;
//! under the kill-restart soak a [`ChaosProbe`] sits behind it, so the
//! seeded `panic_at` machinery that drives every other soak in this repo
//! (occurrence counting, replayable decisions, trace hashing) kills the
//! process-under-test at exactly the chosen window.

use gfsl::chaos::ChaosProbe;
use gfsl::{CrashPoint, MemProbe};

/// Where the durability path's crash points report to.
#[derive(Default)]
pub enum Failpoints {
    /// Production: every hit is free.
    #[default]
    Off,
    /// Chaos campaign: hits route to a [`ChaosProbe`], whose controller may
    /// stall or panic per its seeded options. Use a 1-participant
    /// controller for the single-threaded durable path — its only
    /// participant is always the one parked, so every turn grants
    /// immediately and `panic_at` fires at the seeded occurrence.
    Chaos(ChaosProbe),
}

impl Failpoints {
    /// Report reaching `point`. May panic (injected kill) under chaos.
    #[inline]
    pub fn hit(&mut self, point: CrashPoint) {
        if let Failpoints::Chaos(probe) = self {
            probe.crash_point(point);
        }
    }

    /// Is a chaos probe installed?
    pub fn armed(&self) -> bool {
        matches!(self, Failpoints::Chaos(_))
    }
}

impl std::fmt::Debug for Failpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Failpoints::Off => "Failpoints::Off",
            Failpoints::Chaos(_) => "Failpoints::Chaos(..)",
        })
    }
}
