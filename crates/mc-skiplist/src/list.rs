//! The lock-free skiplist algorithm (Herlihy & Shavit ch. 14, as ported to
//! the GPU by Misra & Chaudhuri).

use gfsl_gpu_mem::{MemProbe, NoProbe, PoolExhausted, WordPool};
use gfsl_workload::rng::{tower_height, SplitMix64};

use crate::node::{MarkedPtr, NodeRef, MAX_HEIGHT, NIL};

/// Configuration of an [`McSkipList`].
#[derive(Debug, Clone, Copy)]
pub struct McParams {
    /// Per-level promotion probability for tower heights (`p_key`; the
    /// paper finds 0.5 best for M&C in all mixtures).
    pub p_key: f64,
    /// Tower height cap.
    pub max_height: u32,
    /// Pool capacity in 64-bit words.
    pub pool_words: u32,
    /// Seed for per-handle tower-draw streams.
    pub seed: u64,
}

impl Default for McParams {
    fn default() -> Self {
        McParams {
            p_key: 0.5,
            max_height: MAX_HEIGHT as u32,
            pool_words: 1 << 22,
            seed: 0xC0FF_EE00_D15E_A5E5,
        }
    }
}

impl McParams {
    /// Size the pool for about `expected_keys` live keys. A `p_key = 0.5`
    /// tower averages 2 levels -> 4 words/node; deleted nodes leak (as in
    /// M&C), so callers doing delete-heavy runs should budget inserts, not
    /// live keys.
    pub fn sized_for(expected_inserts: u64) -> McParams {
        let mut p = McParams::default();
        let words = expected_inserts.saturating_mul(5) + (1 << 16);
        p.pool_words = words.min(u32::MAX as u64 - 1) as u32;
        p
    }
}

/// Per-handle statistics (the harness diffs `node_reads` around each
/// operation to obtain the per-op traversal lengths that feed the SIMT
/// divergence model).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct McStats {
    /// Completed operations.
    pub ops: u64,
    /// Node-pointer reads (scattered lane accesses).
    pub node_reads: u64,
    /// CAS attempts that failed (contention + helping).
    pub cas_failures: u64,
    /// Full-restart retries of `find` caused by failed snips.
    pub find_retries: u64,
}

impl McStats {
    /// Merge another handle's counters.
    pub fn merge(&mut self, o: &McStats) {
        self.ops += o.ops;
        self.node_reads += o.node_reads;
        self.cas_failures += o.cas_failures;
        self.find_retries += o.find_retries;
    }
}

/// A Misra & Chaudhuri-style lock-free skiplist over the simulated device
/// memory pool.
///
/// ```
/// use mc_skiplist::{McParams, McSkipList};
///
/// let list = McSkipList::new(McParams::default()).unwrap();
/// let mut h = list.handle();
/// assert!(h.insert(5, 50));
/// assert_eq!(h.get(5), Some(50));
/// assert!(h.remove(5));
/// assert!(!h.contains(5));
/// ```
pub struct McSkipList {
    pool: WordPool,
    params: McParams,
    /// The `-∞` head node, with a full-height tower.
    head: NodeRef,
    handle_seq: std::sync::atomic::AtomicU32,
}

impl McSkipList {
    /// Create an empty list (head sentinel only).
    pub fn new(params: McParams) -> Result<McSkipList, PoolExhausted> {
        assert!(params.max_height as usize <= MAX_HEIGHT);
        assert!((0.0..=1.0).contains(&params.p_key), "p_key must be a probability");
        let pool = WordPool::new(params.pool_words as usize);
        let base = pool.alloc(NodeRef::words_for(params.max_height), 1)?;
        let head = NodeRef { base };
        head.init(&pool, &mut NoProbe, 0, 0, params.max_height);
        Ok(McSkipList {
            pool,
            params,
            head,
            handle_seq: std::sync::atomic::AtomicU32::new(0),
        })
    }

    /// The configuration.
    pub fn params(&self) -> &McParams {
        &self.params
    }

    /// Raw access to the underlying pool (simulator/tooling API).
    pub fn raw_pool(&self) -> &WordPool {
        &self.pool
    }

    /// The head sentinel node (simulator/tooling API).
    pub fn head_node(&self) -> NodeRef {
        self.head
    }

    /// Words allocated so far (leaked nodes included — like the original).
    pub fn words_used(&self) -> u32 {
        self.pool.used()
    }

    /// An uninstrumented operation handle.
    pub fn handle(&self) -> McHandle<'_, NoProbe> {
        self.handle_with(NoProbe)
    }

    /// A handle with a custom memory probe.
    pub fn handle_with<P: MemProbe>(&self, probe: P) -> McHandle<'_, P> {
        let n = self
            .handle_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed) as u64;
        McHandle {
            list: self,
            probe,
            rng: SplitMix64::new(self.params.seed ^ n.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
            stats: McStats::default(),
        }
    }

    /// Ascending keys currently in the set (unmarked level-0 nodes).
    /// Quiescent use only.
    pub fn keys(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut probe = NoProbe;
        let mut cur = self.head.next(&self.pool, &mut probe, 0);
        while cur.ptr() != NIL {
            let node = self.node(cur.ptr());
            let (k, _) = node.header(&self.pool, &mut probe);
            let nxt = node.next(&self.pool, &mut probe, 0);
            if !nxt.marked() {
                out.push(k);
            }
            cur = nxt;
        }
        out
    }

    /// Number of live keys. Quiescent use only.
    pub fn len(&self) -> usize {
        self.keys().len()
    }

    /// Is the set empty? Quiescent use only.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn node(&self, idx: u32) -> NodeRef {
        NodeRef { base: idx }
    }

    fn head_idx(&self) -> u32 {
        self.head.base
    }
}

impl std::fmt::Debug for McSkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McSkipList")
            .field("p_key", &self.params.p_key)
            .field("words_used", &self.words_used())
            .finish()
    }
}

/// A per-thread session: one GPU thread's worth of operations.
pub struct McHandle<'a, P: MemProbe> {
    list: &'a McSkipList,
    probe: P,
    rng: SplitMix64,
    stats: McStats,
}

impl<'a, P: MemProbe> McHandle<'a, P> {
    /// Statistics accumulated so far.
    pub fn stats(&self) -> McStats {
        self.stats
    }

    /// Reset statistics.
    pub fn reset_stats(&mut self) {
        self.stats = McStats::default();
    }

    /// Consume the handle, returning probe and stats.
    pub fn into_parts(self) -> (P, McStats) {
        (self.probe, self.stats)
    }

    /// Insert with a tower height drawn from this handle's `p_key` stream.
    /// Returns `false` if the key was present.
    ///
    /// # Panics
    /// Panics on pool exhaustion — use
    /// [`McHandle::try_insert_with_height`] to handle exhaustion gracefully
    /// (the paper's M&C simply dies; §5.3: "it runs out of memory for
    /// larger structures").
    pub fn insert(&mut self, key: u32, value: u32) -> bool {
        let h = tower_height(&mut self.rng, self.list.params.p_key, self.list.params.max_height);
        self.try_insert_with_height(key, value, h).expect("M&C pool exhausted")
    }

    /// Insert with an explicit pre-drawn tower height (the paper's kernels
    /// receive the level with each insert in the input array, §5.1).
    pub fn try_insert_with_height(
        &mut self,
        key: u32,
        value: u32,
        height: u32,
    ) -> Result<bool, PoolExhausted> {
        assert!(key != 0 && key != u32::MAX, "keys 0 and u32::MAX are reserved");
        let height = height.clamp(1, self.list.params.max_height);
        self.stats.ops += 1;
        let pool = &self.list.pool;
        loop {
            let (preds, succs, found) = self.find(key);
            if found {
                return Ok(false);
            }
            let base = pool.alloc(NodeRef::words_for(height), 1)?;
            let node = NodeRef { base };
            node.init(pool, &mut self.probe, key, value, height);
            for (l, &succ) in succs.iter().enumerate().take(height as usize) {
                let a = node.next_addr(l);
                self.probe.lane_write(a);
                pool.write(a, MarkedPtr::new(succ, false).0);
            }
            // Publish at level 0.
            let pred = self.list.node(preds[0]);
            if !pred.cas_next(
                pool,
                &mut self.probe,
                0,
                MarkedPtr::new(succs[0], false),
                MarkedPtr::new(base, false),
            ) {
                // Lost the race; leak the node (as the original does) and
                // retry from scratch.
                self.stats.cas_failures += 1;
                continue;
            }
            // Link the upper levels.
            let mut preds = preds;
            let mut succs = succs;
            for l in 1..height as usize {
                loop {
                    let cur = node.next(pool, &mut self.probe, l);
                    if cur.marked() {
                        return Ok(true); // deleted while linking: done
                    }
                    if cur.ptr() != succs[l]
                        && !node.cas_next(
                            pool,
                            &mut self.probe,
                            l,
                            cur,
                            MarkedPtr::new(succs[l], false),
                        )
                    {
                        self.stats.cas_failures += 1;
                        // Re-read and retry the level.
                        continue;
                    }
                    let pred = self.list.node(preds[l]);
                    if pred.cas_next(
                        pool,
                        &mut self.probe,
                        l,
                        MarkedPtr::new(succs[l], false),
                        MarkedPtr::new(base, false),
                    ) {
                        break;
                    }
                    self.stats.cas_failures += 1;
                    let (p2, s2, _) = self.find(key);
                    preds = p2;
                    succs = s2;
                    // If the node vanished from level 0 (concurrent delete),
                    // stop linking.
                    if s2[0] != base {
                        return Ok(true);
                    }
                }
            }
            return Ok(true);
        }
    }

    /// Remove `key`. Returns `true` if this call logically deleted it.
    pub fn remove(&mut self, key: u32) -> bool {
        self.stats.ops += 1;
        let pool = &self.list.pool;
        let (_, succs, found) = self.find(key);
        if !found {
            return false;
        }
        let node = self.list.node(succs[0]);
        let (_, height) = node.header(pool, &mut self.probe);
        self.stats.node_reads += 1;
        // Mark the upper levels top-down.
        for l in (1..height as usize).rev() {
            let mut cur = node.next(pool, &mut self.probe, l);
            while !cur.marked() {
                if !node.cas_next(
                    pool,
                    &mut self.probe,
                    l,
                    cur,
                    MarkedPtr::new(cur.ptr(), true),
                ) {
                    self.stats.cas_failures += 1;
                }
                cur = node.next(pool, &mut self.probe, l);
            }
        }
        // Level 0 decides the winner.
        loop {
            let cur = node.next(pool, &mut self.probe, 0);
            if cur.marked() {
                return false; // another thread won
            }
            if node.cas_next(pool, &mut self.probe, 0, cur, MarkedPtr::new(cur.ptr(), true)) {
                // Physically unlink (best effort) via a find pass.
                let _ = self.find(key);
                return true;
            }
            self.stats.cas_failures += 1;
        }
    }

    /// Wait-free-ish membership query (no helping, no CAS).
    pub fn contains(&mut self, key: u32) -> bool {
        self.get(key).is_some()
    }

    /// Look up `key`'s value.
    pub fn get(&mut self, key: u32) -> Option<u32> {
        self.stats.ops += 1;
        let pool = &self.list.pool;
        let mut pred = self.list.head;
        let mut found: Option<NodeRef> = None;
        for l in (0..self.list.params.max_height as usize).rev() {
            let mut curp = pred.next(pool, &mut self.probe, l);
            self.stats.node_reads += 1;
            loop {
                // Skip marked nodes without helping.
                let cur = curp.ptr();
                if cur == NIL {
                    break;
                }
                let node = self.list.node(cur);
                let (k, _) = node.header(pool, &mut self.probe);
                let nxt = node.next(pool, &mut self.probe, l);
                self.stats.node_reads += 2;
                if nxt.marked() {
                    curp = nxt;
                    continue;
                }
                if k < key {
                    pred = node;
                    curp = nxt;
                } else {
                    if k == key {
                        found = Some(node);
                    }
                    break;
                }
            }
            if found.is_some() {
                break;
            }
        }
        let node = found?;
        // Live only if its level-0 pointer is unmarked.
        let nxt = node.next(pool, &mut self.probe, 0);
        self.stats.node_reads += 1;
        if nxt.marked() {
            None
        } else {
            Some(node.value(pool, &mut self.probe))
        }
    }

    /// Harris-style find with snipping of marked nodes. Returns per-level
    /// predecessors/successors (node indexes; `preds` defaults to head,
    /// `succs` to NIL) and whether an unmarked level-0 match exists.
    fn find(&mut self, key: u32) -> ([u32; MAX_HEIGHT], [u32; MAX_HEIGHT], bool) {
        let pool = &self.list.pool;
        'retry: loop {
            let mut preds = [self.list.head_idx(); MAX_HEIGHT];
            let mut succs = [NIL; MAX_HEIGHT];
            let mut pred = self.list.head;
            for l in (0..self.list.params.max_height as usize).rev() {
                let mut curp = pred.next(pool, &mut self.probe, l);
                self.stats.node_reads += 1;
                loop {
                    let cur_idx = curp.ptr();
                    if cur_idx == NIL {
                        break;
                    }
                    let node = self.list.node(cur_idx);
                    let nxt = node.next(pool, &mut self.probe, l);
                    self.stats.node_reads += 1;
                    if nxt.marked() {
                        // Snip the marked node out of this level.
                        if !pred.cas_next(
                            pool,
                            &mut self.probe,
                            l,
                            MarkedPtr::new(cur_idx, false),
                            MarkedPtr::new(nxt.ptr(), false),
                        ) {
                            self.stats.cas_failures += 1;
                            self.stats.find_retries += 1;
                            continue 'retry;
                        }
                        curp = MarkedPtr::new(nxt.ptr(), false);
                        continue;
                    }
                    let (k, _) = node.header(pool, &mut self.probe);
                    self.stats.node_reads += 1;
                    if k < key {
                        pred = node;
                        curp = nxt;
                    } else {
                        break;
                    }
                }
                preds[l] = pred.base;
                succs[l] = curp.ptr();
            }
            let found = if succs[0] == NIL {
                false
            } else {
                let (k, _) = self.list.node(succs[0]).header(pool, &mut self.probe);
                self.stats.node_reads += 1;
                k == key
            };
            return (preds, succs, found);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let list = McSkipList::new(McParams::default()).unwrap();
        let mut h = list.handle();
        assert!(h.insert(10, 100));
        assert!(!h.insert(10, 200), "duplicate rejected");
        assert_eq!(h.get(10), Some(100));
        assert!(h.remove(10));
        assert!(!h.remove(10));
        assert!(!h.contains(10));
        assert!(h.insert(10, 300), "reinsert after delete");
        assert_eq!(h.get(10), Some(300));
    }

    #[test]
    fn keys_come_out_sorted() {
        let list = McSkipList::new(McParams::default()).unwrap();
        let mut h = list.handle();
        for k in [50u32, 10, 40, 20, 30] {
            assert!(h.insert(k, k));
        }
        assert_eq!(list.keys(), vec![10, 20, 30, 40, 50]);
        assert!(h.remove(30));
        assert_eq!(list.keys(), vec![10, 20, 40, 50]);
        assert_eq!(list.len(), 4);
    }

    #[test]
    fn random_churn_matches_reference() {
        let list = McSkipList::new(McParams::default()).unwrap();
        let mut h = list.handle();
        let mut reference = std::collections::BTreeSet::new();
        let mut x = 0x1357_9BDFu64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 800 + 1) as u32;
            match (x >> 33) % 3 {
                0 => assert_eq!(h.insert(k, k), reference.insert(k), "insert {k}"),
                1 => assert_eq!(h.remove(k), reference.remove(&k), "remove {k}"),
                _ => assert_eq!(h.contains(k), reference.contains(&k), "contains {k}"),
            }
        }
        let keys: Vec<u32> = reference.into_iter().collect();
        assert_eq!(list.keys(), keys);
    }

    #[test]
    fn towers_respect_height_and_structure_survives() {
        let list = McSkipList::new(McParams {
            p_key: 0.9,
            max_height: 8,
            ..Default::default()
        })
        .unwrap();
        let mut h = list.handle();
        for k in 1..=2000u32 {
            assert!(h.insert(k, k));
        }
        for k in 1..=2000u32 {
            assert_eq!(h.get(k), Some(k), "k={k}");
        }
        assert_eq!(list.len(), 2000);
    }

    #[test]
    fn explicit_height_insert() {
        let list = McSkipList::new(McParams::default()).unwrap();
        let mut h = list.handle();
        assert_eq!(h.try_insert_with_height(5, 55, 32), Ok(true));
        assert_eq!(h.try_insert_with_height(5, 55, 1), Ok(false));
        assert_eq!(h.get(5), Some(55));
    }

    #[test]
    fn pool_exhaustion_is_an_error() {
        let list = McSkipList::new(McParams {
            pool_words: 64,
            ..Default::default()
        })
        .unwrap();
        let mut h = list.handle();
        let mut hit_exhaustion = false;
        for k in 1..=100u32 {
            match h.try_insert_with_height(k, k, 1) {
                Ok(_) => {}
                Err(_) => {
                    hit_exhaustion = true;
                    break;
                }
            }
        }
        assert!(hit_exhaustion);
    }

    #[test]
    fn concurrent_disjoint_classes() {
        let list = McSkipList::new(McParams::sized_for(200_000)).unwrap();
        let finals: Vec<std::collections::BTreeSet<u32>> = std::thread::scope(|s| {
            (0..4u32)
                .map(|t| {
                    let list = &list;
                    s.spawn(move || {
                        let mut h = list.handle();
                        let mut reference = std::collections::BTreeSet::new();
                        let mut x = 0xFEED_0000u64 + t as u64;
                        for _ in 0..8000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = (x % 1500) as u32 * 4 + t + 1;
                            if (x >> 40).is_multiple_of(2) {
                                assert_eq!(h.insert(k, k), reference.insert(k));
                            } else {
                                assert_eq!(h.remove(k), reference.remove(&k));
                            }
                        }
                        reference
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let expect: Vec<u32> = finals
            .into_iter()
            .flatten()
            .collect::<std::collections::BTreeSet<u32>>()
            .into_iter()
            .collect();
        assert_eq!(list.keys(), expect);
    }

    #[test]
    fn contention_on_same_keys_stays_consistent() {
        let list = McSkipList::new(McParams::sized_for(500_000)).unwrap();
        std::thread::scope(|s| {
            for t in 0..6u64 {
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut x = 0xABC0 + t;
                    for _ in 0..6000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = (x % 200 + 1) as u32;
                        match (x >> 45) % 3 {
                            0 => {
                                let _ = h.insert(k, k);
                            }
                            1 => {
                                let _ = h.remove(k);
                            }
                            _ => {
                                let _ = h.contains(k);
                            }
                        }
                    }
                });
            }
        });
        // Quiescent structural sanity: keys sorted and unique, all in range.
        let keys = list.keys();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().all(|&k| (1..=200).contains(&k)));
    }
}
