//! Vectorized ballot kernels: branch-free SWAR evaluation of the three hot
//! chunk votes over the packed chunk words.
//!
//! The paper's premise is that a team inspects a whole chunk in one
//! coalesced transaction and decides the next step with a *single* ballot.
//! The reference emulation ([`crate::Team::ballot`]) invokes a closure per
//! lane — faithful to lockstep semantics, but 16/32 indirect predicate
//! evaluations per traversal step on the host. The kernels here compute the
//! same vote masks directly from the chunk's packed `u64` words with
//! branch-free arithmetic in unrolled 8-word blocks (`u64x8`-style), which
//! LLVM auto-vectorizes; one traversal decision becomes a handful of SIMD
//! compares instead of a lane loop.
//!
//! Two implementations of [`VectorBallot`] ship:
//!
//! * [`ScalarBallot`] — the per-lane loop, kept as the differential-test
//!   oracle and used by chaos/replay runs (the "known-good" kernel);
//! * [`SwarBallot`] — the branch-free block kernel used on the hot path.
//!
//! Both are pure register math over an already-read chunk snapshot: they
//! touch no shared memory and emit no probe events, so replay trace hashes
//! are bit-identical whichever kernel computed the votes (asserted by the
//! chaos parity tests in `gfsl-core`).
//!
//! Key encoding contract (shared with `gfsl-core`'s chunk layout): each
//! data word packs the key in its **low 32 bits**; key `0` is the `-∞`
//! sentinel and key `u32::MAX` is the `∞` / EMPTY sentinel.

use crate::ballot::Ballot;

/// `1` iff `key(word) <= k`. A plain comparison cast: `setcc`/`cset` on
/// every target, and — unlike a 64-bit borrow trick — a shape LLVM's
/// vectorizer recognizes as a packed 32-bit compare.
#[inline(always)]
fn le_bit(word: u64, k: u32) -> u32 {
    (word as u32 <= k) as u32
}

/// `1` iff `key(word) == k`, branch-free via the comparison cast.
#[inline(always)]
fn eq_bit(word: u64, k: u32) -> u32 {
    (word as u32 == k) as u32
}

/// `1` iff `key(word)` is a live user key (neither `0` = `-∞` nor
/// `u32::MAX` = `∞`/EMPTY).
#[inline(always)]
fn live_bit(word: u64) -> u32 {
    let key = word as u32;
    ((key != 0) & (key != u32::MAX)) as u32
}

/// Ballot kernels over the data words of one chunk snapshot.
///
/// `words[i]` is lane `i`'s data word (key in the low 32 bits); callers
/// pass exactly the DATA lanes, so every returned mask bit `i` is lane
/// `i`'s vote and bits at or above `words.len()` are zero.
pub trait VectorBallot {
    /// Mask of lanes whose key is `<= k` (the `getTidForNextStep` /
    /// `getTidOfDownStep` data vote).
    fn keys_le(&self, words: &[u64], k: u32) -> u32;

    /// Mask of lanes whose key is `== k` (the `isTidWithEqualKey` data
    /// vote).
    fn keys_eq(&self, words: &[u64], k: u32) -> u32;

    /// Mask of lanes holding a live user key — neither the `-∞` key (`0`)
    /// nor EMPTY/`∞` (`u32::MAX`) — the min-entry scan vote.
    fn keys_live(&self, words: &[u64]) -> u32;

    /// Mask of lanes whose key is in `[lo, hi]` **and** live. Used by range
    /// scans; equals `keys_le(hi) & !keys_le(lo-1) & keys_live`.
    fn keys_in_range(&self, words: &[u64], lo: u32, hi: u32) -> u32 {
        let le_hi = self.keys_le(words, hi);
        let lt_lo = if lo == 0 { 0 } else { self.keys_le(words, lo - 1) };
        le_hi & !lt_lo & self.keys_live(words)
    }
}

/// Reference per-lane loop: the oracle the SWAR kernel is differentially
/// tested against, and the kernel chaos/replay campaigns pin.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBallot;

impl VectorBallot for ScalarBallot {
    fn keys_le(&self, words: &[u64], k: u32) -> u32 {
        let mut bits = 0u32;
        for (lane, &w) in words.iter().enumerate() {
            if w as u32 <= k {
                bits |= 1 << lane;
            }
        }
        bits
    }

    fn keys_eq(&self, words: &[u64], k: u32) -> u32 {
        let mut bits = 0u32;
        for (lane, &w) in words.iter().enumerate() {
            if w as u32 == k {
                bits |= 1 << lane;
            }
        }
        bits
    }

    fn keys_live(&self, words: &[u64]) -> u32 {
        let mut bits = 0u32;
        for (lane, &w) in words.iter().enumerate() {
            let key = w as u32;
            if key != 0 && key != u32::MAX {
                bits |= 1 << lane;
            }
        }
        bits
    }
}

/// Branch-free SWAR kernel: unrolled 8-word blocks of carry-trick compares,
/// auto-vectorized by LLVM into SIMD lanes on x86-64/aarch64.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwarBallot;

/// Apply `f(word) -> 0|1` over `words` in unrolled 8-word blocks and pack
/// the results into a lane mask.
#[inline(always)]
fn swar_mask(words: &[u64], f: impl Fn(u64) -> u32 + Copy) -> u32 {
    let mut bits = 0u32;
    let mut lane = 0usize;
    let mut chunks = words.chunks_exact(8);
    for blk in &mut chunks {
        // One straight-line block: no per-lane branches, no early exit.
        let m = f(blk[0])
            | f(blk[1]) << 1
            | f(blk[2]) << 2
            | f(blk[3]) << 3
            | f(blk[4]) << 4
            | f(blk[5]) << 5
            | f(blk[6]) << 6
            | f(blk[7]) << 7;
        bits |= m << lane;
        lane += 8;
    }
    for (i, &w) in chunks.remainder().iter().enumerate() {
        bits |= f(w) << (lane + i);
    }
    bits
}

/// Count entries with key `<= k` across an arbitrarily wide word run.
///
/// Ballots pack one vote bit per lane, which caps them at 32 entries — the
/// warp width. The flat-bottom (B-Skiplist) engine packs *hundreds* of
/// sorted entries into one fat leaf, so its position vote is a **rank**
/// (a count), not a mask. The scalar loop is the oracle; the SWAR version
/// accumulates the same branch-free compare bits in unrolled 8-word blocks.
#[inline]
fn scalar_rank_le(words: &[u64], k: u32) -> usize {
    words.iter().filter(|&&w| w as u32 <= k).count()
}

#[inline]
fn swar_rank_le(words: &[u64], k: u32) -> usize {
    let mut count = 0u32;
    let mut chunks = words.chunks_exact(8);
    for blk in &mut chunks {
        // One straight-line block, no early exit: auto-vectorizes to packed
        // compares + horizontal add.
        count += le_bit(blk[0], k)
            + le_bit(blk[1], k)
            + le_bit(blk[2], k)
            + le_bit(blk[3], k)
            + le_bit(blk[4], k)
            + le_bit(blk[5], k)
            + le_bit(blk[6], k)
            + le_bit(blk[7], k);
    }
    for &w in chunks.remainder() {
        count += le_bit(w, k);
    }
    count as usize
}

impl VectorBallot for SwarBallot {
    #[inline]
    fn keys_le(&self, words: &[u64], k: u32) -> u32 {
        swar_mask(words, |w| le_bit(w, k))
    }

    #[inline]
    fn keys_eq(&self, words: &[u64], k: u32) -> u32 {
        swar_mask(words, |w| eq_bit(w, k))
    }

    #[inline]
    fn keys_live(&self, words: &[u64]) -> u32 {
        swar_mask(words, live_bit)
    }
}

/// Which ballot kernel a structure runs its chunk votes through.
///
/// A plain enum (not a generic parameter) so the choice is a runtime knob:
/// benches flip it per configuration, chaos campaigns pin [`Scalar`] as the
/// reference, and differential tests drive both through one code path.
///
/// [`Scalar`]: BallotKernel::Scalar
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BallotKernel {
    /// Per-lane reference loop ([`ScalarBallot`]).
    Scalar,
    /// Branch-free SWAR blocks ([`SwarBallot`]); the default.
    #[default]
    Swar,
}

impl BallotKernel {
    /// Mask of data lanes (within `words`) whose key is `<= k`.
    #[inline]
    pub fn keys_le(self, words: &[u64], k: u32) -> Ballot {
        let bits = match self {
            BallotKernel::Scalar => ScalarBallot.keys_le(words, k),
            BallotKernel::Swar => SwarBallot.keys_le(words, k),
        };
        Ballot::from_bits(bits)
    }

    /// Mask of data lanes whose key is `== k`.
    #[inline]
    pub fn keys_eq(self, words: &[u64], k: u32) -> Ballot {
        let bits = match self {
            BallotKernel::Scalar => ScalarBallot.keys_eq(words, k),
            BallotKernel::Swar => SwarBallot.keys_eq(words, k),
        };
        Ballot::from_bits(bits)
    }

    /// Mask of data lanes holding a live user key.
    #[inline]
    pub fn keys_live(self, words: &[u64]) -> Ballot {
        let bits = match self {
            BallotKernel::Scalar => ScalarBallot.keys_live(words),
            BallotKernel::Swar => SwarBallot.keys_live(words),
        };
        Ballot::from_bits(bits)
    }

    /// Mask of data lanes whose key is live and in `[lo, hi]`.
    #[inline]
    pub fn keys_in_range(self, words: &[u64], lo: u32, hi: u32) -> Ballot {
        let bits = match self {
            BallotKernel::Scalar => ScalarBallot.keys_in_range(words, lo, hi),
            BallotKernel::Swar => SwarBallot.keys_in_range(words, lo, hi),
        };
        Ballot::from_bits(bits)
    }

    /// Rank of `k` in a word run of *any* width: the count of entries with
    /// key `<= k`. The fat-leaf analogue of [`keys_le`](Self::keys_le) for
    /// runs wider than the 32-lane ballot (flat-bottom engine leaves).
    #[inline]
    pub fn rank_le(self, words: &[u64], k: u32) -> usize {
        match self {
            BallotKernel::Scalar => scalar_rank_le(words, k),
            BallotKernel::Swar => swar_rank_le(words, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn word(key: u32, val: u32) -> u64 {
        ((val as u64) << 32) | key as u64
    }

    #[test]
    fn le_handles_sentinels_and_boundaries() {
        let words = [word(0, 9), word(5, 1), word(10, 2), word(u32::MAX, 0)];
        for kernel in [BallotKernel::Scalar, BallotKernel::Swar] {
            assert_eq!(kernel.keys_le(&words, 4).bits(), 0b0001, "{kernel:?}");
            assert_eq!(kernel.keys_le(&words, 5).bits(), 0b0011, "{kernel:?}");
            assert_eq!(kernel.keys_le(&words, 10).bits(), 0b0111, "{kernel:?}");
            assert_eq!(kernel.keys_le(&words, u32::MAX - 1).bits(), 0b0111);
            assert_eq!(kernel.keys_le(&words, u32::MAX).bits(), 0b1111);
        }
    }

    #[test]
    fn eq_ignores_value_half() {
        let words = [word(7, 123), word(7, 456), word(8, 7)];
        for kernel in [BallotKernel::Scalar, BallotKernel::Swar] {
            assert_eq!(kernel.keys_eq(&words, 7).bits(), 0b011, "{kernel:?}");
            assert_eq!(kernel.keys_eq(&words, 8).bits(), 0b100, "{kernel:?}");
            assert_eq!(kernel.keys_eq(&words, 9).bits(), 0, "{kernel:?}");
        }
    }

    #[test]
    fn live_excludes_both_sentinels() {
        let words = [word(0, 1), word(1, 0), word(u32::MAX, 5), word(42, 0)];
        for kernel in [BallotKernel::Scalar, BallotKernel::Swar] {
            assert_eq!(kernel.keys_live(&words).bits(), 0b1010, "{kernel:?}");
        }
    }

    #[test]
    fn range_mask_composes() {
        let words: Vec<u64> = (0..14u32).map(|i| word(i * 10, i)).collect();
        for kernel in [BallotKernel::Scalar, BallotKernel::Swar] {
            // keys 0,10,..,130; live keys in [25, 60] are 30,40,50,60.
            assert_eq!(kernel.keys_in_range(&words, 25, 60).bits(), 0b0111_1000);
            // lo = 0 never panics and -inf stays excluded.
            assert_eq!(kernel.keys_in_range(&words, 0, 10).bits(), 0b10);
        }
    }

    #[test]
    fn full_warp_width_masks() {
        let words: Vec<u64> = (0..30u32).map(|i| word(i + 1, 0)).collect();
        for kernel in [BallotKernel::Scalar, BallotKernel::Swar] {
            assert_eq!(kernel.keys_le(&words, u32::MAX - 1).bits(), (1 << 30) - 1);
            assert_eq!(kernel.keys_live(&words).bits(), (1 << 30) - 1);
        }
    }

    #[test]
    fn rank_le_counts_past_warp_width() {
        // 300 sorted keys 10,20,...,3000: far wider than one ballot.
        let words: Vec<u64> = (1..=300u32).map(|i| word(i * 10, i)).collect();
        for kernel in [BallotKernel::Scalar, BallotKernel::Swar] {
            assert_eq!(kernel.rank_le(&words, 5), 0, "{kernel:?}");
            assert_eq!(kernel.rank_le(&words, 10), 1, "{kernel:?}");
            assert_eq!(kernel.rank_le(&words, 1234), 123, "{kernel:?}");
            assert_eq!(kernel.rank_le(&words, u32::MAX), 300, "{kernel:?}");
        }
    }

    proptest! {
        #[test]
        fn swar_matches_scalar_rank_le(
            words in proptest::collection::vec(any::<u64>(), 0..=512),
            k in any::<u32>(),
        ) {
            prop_assert_eq!(swar_rank_le(&words, k), scalar_rank_le(&words, k));
        }

        #[test]
        fn swar_matches_scalar_le(
            words in proptest::collection::vec(any::<u64>(), 0..=30),
            k in any::<u32>(),
        ) {
            prop_assert_eq!(
                SwarBallot.keys_le(&words, k),
                ScalarBallot.keys_le(&words, k)
            );
        }

        #[test]
        fn swar_matches_scalar_eq(
            words in proptest::collection::vec(any::<u64>(), 0..=30),
            k in any::<u32>(),
        ) {
            prop_assert_eq!(
                SwarBallot.keys_eq(&words, k),
                ScalarBallot.keys_eq(&words, k)
            );
        }

        #[test]
        fn swar_matches_scalar_live(
            words in proptest::collection::vec(any::<u64>(), 0..=30),
        ) {
            prop_assert_eq!(SwarBallot.keys_live(&words), ScalarBallot.keys_live(&words));
        }
    }
}
