//! End-to-end smoke tests for the serving front end — the CI gate.
//!
//! Covers the acceptance properties at a size that runs in seconds:
//! a low-load closed loop completes with zero sheds; a chaos-seeded run
//! replays with an identical trace hash; overload sheds with the typed
//! path (and closed-loop retries eventually complete everything); and the
//! service loop's throughput is a sane fraction of the raw batch loop.

use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_serve::{
    env_seed, raw_batch_mops, serve, ClosedSource, ExecMode, Fifo, KeyRangeSharded, OpenSource,
    ReadWriteSeparated, ServeConfig,
};
use gfsl_workload::{ClosedLoop, OpenLoop, ServeMix};

fn test_seed() -> u64 {
    let seed = env_seed(0);
    eprintln!("GFSL_TEST_SEED={seed} (set this env var to replay)");
    seed
}

fn list_for(range: u32) -> Gfsl {
    let params = GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 14,
        ..Default::default()
    };
    Gfsl::prefilled(params, (1..=range).filter(|k| k % 2 == 0)).unwrap()
}

#[test]
fn low_load_closed_loop_sheds_nothing() {
    let seed = test_seed() ^ 0x10AD;
    let list = list_for(10_000);
    // 32 clients, long think times, roomy intake: far below capacity.
    let pop = ClosedLoop::new(32, 100, 50_000, ServeMix::RANGE10, 10_000, seed);
    let total = pop.total_ops();
    let mut src = ClosedSource::new(pop, 10_000);
    let cfg = ServeConfig {
        workers: 2,
        epoch_ns: 100_000,
        batch_ops: 128,
        max_batch: 64,
        intake_cap: 1024,
        seed,
        exec: ExecMode::Modeled { ns_per_op: 200 },
    };
    let report = serve(&list, &cfg, &mut Fifo::default(), &mut src);
    assert_eq!(report.metrics.ops, total, "every request completes");
    assert_eq!(report.metrics.sheds, 0, "low load must not shed");
    assert_eq!(report.metrics.failed, 0);
    assert_eq!(src.retries, 0);
    assert!(report.metrics.ranges > 0, "RANGE10 mix exercises range scans");
    assert!(report.metrics.latency.p50_ns() <= report.metrics.latency.p99_ns());
    list.assert_valid();
}

#[test]
fn chaos_seeded_run_replays_with_identical_trace_hash() {
    let seed = test_seed() ^ 0xC405;
    let run = || {
        let list = list_for(500);
        let pop = ClosedLoop::new(8, 25, 1_000, ServeMix::C80, 500, seed);
        let mut src = ClosedSource::new(pop, 1_000);
        let cfg = ServeConfig {
            workers: 2,
            epoch_ns: 50_000,
            batch_ops: 64,
            max_batch: 32,
            intake_cap: 256,
            seed,
            exec: ExecMode::Chaos {
                ns_per_op: 500,
                max_stall_turns: 2,
            },
        };
        let report = serve(&list, &cfg, &mut KeyRangeSharded::new(500), &mut src);
        list.assert_valid();
        report
    };
    let a = run();
    let b = run();
    assert_eq!(a.metrics.ops, 8 * 25);
    assert_eq!(b.metrics.ops, 8 * 25);
    assert_eq!(
        a.trace_hash, b.trace_hash,
        "chaos-seeded service runs must replay bit-for-bit"
    );
    assert_eq!(a.metrics.epochs, b.metrics.epochs);
    assert_eq!(a.metrics.batches, b.metrics.batches);
}

#[test]
fn overload_sheds_with_typed_error_and_open_clients_drop() {
    let seed = test_seed() ^ 0x54ED;
    let list = list_for(2_000);
    // Offered rate far above modeled capacity, tiny intake: must shed.
    let open = OpenLoop::new(ServeMix::C80, 2_000, 64, 20_000, 10.0, seed);
    let mut src = OpenSource::new(open);
    let cfg = ServeConfig {
        workers: 2,
        epoch_ns: 20_000,
        batch_ops: 128,
        max_batch: 64,
        intake_cap: 128,
        seed,
        exec: ExecMode::Modeled { ns_per_op: 2_000 },
    };
    let report = serve(&list, &cfg, &mut Fifo::default(), &mut src);
    assert!(report.metrics.sheds > 0, "overload must shed");
    assert_eq!(report.metrics.sheds, src.dropped, "every shed is typed and counted");
    assert_eq!(
        report.metrics.ops + report.metrics.sheds,
        20_000,
        "each arrival either completes or sheds"
    );
    assert!(
        report.metrics.queue_depth_max <= cfg.intake_cap,
        "backpressure bounds the queue"
    );
}

#[test]
fn closed_loop_retries_complete_despite_sheds() {
    let seed = test_seed() ^ 0x4E74;
    let list = list_for(1_000);
    // Zero think time + tiny intake: bursts overflow, clients back off and
    // retry; everything still completes because the loop is closed.
    let pop = ClosedLoop::new(64, 20, 0, ServeMix::C80, 1_000, seed);
    let total = pop.total_ops();
    let mut src = ClosedSource::new(pop, 5_000);
    let cfg = ServeConfig {
        workers: 2,
        epoch_ns: 10_000,
        batch_ops: 32,
        max_batch: 32,
        intake_cap: 32,
        seed,
        exec: ExecMode::Modeled { ns_per_op: 1_000 },
    };
    let report = serve(&list, &cfg, &mut ReadWriteSeparated::default(), &mut src);
    assert_eq!(report.metrics.ops, total, "closed loop retries until done");
    assert_eq!(report.metrics.sheds, src.retries);
    list.assert_valid();
}

#[test]
fn policies_complete_the_same_workload() {
    let seed = test_seed() ^ 0x9013;
    let cfg = ServeConfig {
        workers: 2,
        epoch_ns: 50_000,
        batch_ops: 128,
        max_batch: 64,
        intake_cap: 512,
        seed,
        exec: ExecMode::Modeled { ns_per_op: 300 },
    };
    let mut fifo = Fifo::default();
    let mut sharded = KeyRangeSharded::new(4_000);
    let mut rw = ReadWriteSeparated::default();
    let policies: [&mut dyn gfsl_serve::BatchPolicy; 3] = [&mut fifo, &mut sharded, &mut rw];
    let mut ops_seen = Vec::new();
    for policy in policies {
        let list = list_for(4_000);
        let pop = ClosedLoop::new(24, 40, 2_000, ServeMix::RANGE10, 4_000, seed);
        let mut src = ClosedSource::new(pop, 2_000);
        let report = serve(&list, &cfg, policy, &mut src);
        assert_eq!(report.metrics.sheds, 0);
        ops_seen.push(report.metrics.ops);
        list.assert_valid();
    }
    assert_eq!(ops_seen[0], ops_seen[1]);
    assert_eq!(ops_seen[1], ops_seen[2]);
}

#[test]
fn measured_service_throughput_is_a_sane_fraction_of_raw() {
    let seed = test_seed() ^ 0x7412;
    let range = 50_000u32;
    let n_ops = 200_000usize;
    let workers = 2;
    let list = list_for(range);
    let raw = raw_batch_mops(&list, &ServeMix::C80.stream(seed ^ 1, range, n_ops), workers);

    let list2 = list_for(range);
    let clients = 512;
    let pop = ClosedLoop::new(
        clients,
        n_ops as u64 / clients as u64,
        0,
        ServeMix::C80,
        range,
        seed,
    );
    let total = pop.total_ops();
    let mut src = ClosedSource::new(pop, 1_000);
    let cfg = ServeConfig {
        workers,
        epoch_ns: 200_000,
        batch_ops: 512,
        max_batch: 256,
        intake_cap: 4096,
        seed,
        exec: ExecMode::Measured,
    };
    let report = serve(&list2, &cfg, &mut Fifo::default(), &mut src);
    assert_eq!(report.metrics.ops, total);
    let ratio = report.metrics.mops() / raw;
    eprintln!(
        "raw = {raw:.2} Mops/s, serve = {:.2} Mops/s, ratio = {ratio:.2}",
        report.metrics.mops()
    );
    // The acceptance target (≥ 0.9 at the anchor scale) is asserted by the
    // harness experiment; here we only guard against gross regression so CI
    // noise on small runs cannot flake the suite.
    assert!(
        ratio > 0.5,
        "service loop overhead out of hand: ratio = {ratio:.2} (raw {raw:.2} Mops/s)"
    );
}
