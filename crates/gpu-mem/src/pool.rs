//! The device-memory word pool and its bump allocator.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::layout::WordAddr;
use crate::schedule::ScheduledAtomicU64;

/// Error returned when the pool's fixed capacity is exhausted.
///
/// The paper's implementation preallocates a memory pool at initialization
/// and M&C famously "runs out of memory for larger structures" (§5.3); we
/// surface exhaustion as an error instead of undefined behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhausted {
    /// Words requested by the failing allocation.
    pub requested: u32,
    /// Total pool capacity in words.
    pub capacity: u32,
}

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device memory pool exhausted (requested {} words, capacity {} words)",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for PoolExhausted {}

/// A flat pool of 64-bit atomic words addressed by 32-bit word index.
///
/// Allocation is a lock-free bump pointer ("allocations from the memory pool
/// are performed by incrementing a global counter and using the resulting
/// index as a pointer", §4.1). There is no free: like the paper's
/// implementation, removed chunks/nodes are never reclaimed within a run.
pub struct WordPool {
    words: Box<[ScheduledAtomicU64]>,
    next: AtomicU32,
}

impl WordPool {
    /// Create a pool of `capacity_words` zeroed words.
    ///
    /// # Panics
    /// Panics if `capacity_words` exceeds `u32::MAX - 1` (addresses must fit
    /// the 32-bit index space; `u32::MAX` is reserved as the NIL pointer).
    pub fn new(capacity_words: usize) -> WordPool {
        assert!(
            capacity_words < u32::MAX as usize,
            "pool capacity must fit 32-bit word addressing"
        );
        let mut v = Vec::with_capacity(capacity_words);
        v.resize_with(capacity_words, || ScheduledAtomicU64::new(0));
        WordPool {
            words: v.into_boxed_slice(),
            next: AtomicU32::new(0),
        }
    }

    /// Pool capacity in words.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.words.len() as u32
    }

    /// Words handed out so far (bump pointer position).
    #[inline]
    pub fn used(&self) -> u32 {
        self.next.load(Ordering::Relaxed).min(self.capacity())
    }

    /// Allocate `n` words aligned to `align` words. Returns the base address.
    ///
    /// Alignment matters for the memory model: GFSL chunks must be
    /// line-aligned so a chunk read covers the minimum number of cache lines.
    pub fn alloc(&self, n: u32, align: u32) -> Result<WordAddr, PoolExhausted> {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            let base = (cur + align - 1) & !(align - 1);
            let end = base.saturating_add(n);
            if end > self.capacity() {
                return Err(PoolExhausted {
                    requested: n,
                    capacity: self.capacity(),
                });
            }
            // The bump counter is not a pool word, but concurrent alloc
            // races are real schedules; gate each CAS attempt on the
            // reserved synthetic address so the model checker can
            // interleave allocators too.
            #[cfg(feature = "sched")]
            crate::schedule::yield_point(
                crate::schedule::AccessKind::Rmw,
                crate::schedule::SYNTH_ALLOC,
            );
            match self
                .next
                .compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(base),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Acquire-load the word at `addr`.
    #[inline]
    pub fn read(&self, addr: WordAddr) -> u64 {
        self.words[addr as usize].load(addr, Ordering::Acquire)
    }

    /// Relaxed load (for validation/diagnostic scans at quiescence).
    #[inline]
    pub fn read_relaxed(&self, addr: WordAddr) -> u64 {
        self.words[addr as usize].load(addr, Ordering::Relaxed)
    }

    /// Release-store the word at `addr` (the paper's `AtomicWrite`).
    #[inline]
    pub fn write(&self, addr: WordAddr, value: u64) {
        self.words[addr as usize].store(addr, value, Ordering::Release);
    }

    /// Compare-and-swap the word at `addr` (used for lock words and for
    /// M&C's marked next-pointers). Returns `Ok(current)` on success and
    /// `Err(current)` on failure.
    #[inline]
    pub fn cas(&self, addr: WordAddr, expected: u64, new: u64) -> Result<u64, u64> {
        self.words[addr as usize].compare_exchange(
            addr,
            expected,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        )
    }

    /// Hint the host CPU to pull the `n` words starting at `base` toward
    /// its cache hierarchy (one prefetch per 64-byte line). Purely a
    /// performance hint: no data is returned, out-of-range spans are
    /// clipped, and on non-x86_64 hosts this compiles to nothing.
    #[inline]
    pub fn prefetch(&self, base: WordAddr, n: u32) {
        #[cfg(target_arch = "x86_64")]
        {
            const LINE_WORDS_HOST: u32 = 8; // 64-byte host line / 8-byte word
            let end = base.saturating_add(n).min(self.capacity());
            let mut addr = base & !(LINE_WORDS_HOST - 1);
            while addr < end {
                // SAFETY: addr < capacity, so the pointer is in bounds.
                unsafe {
                    core::arch::x86_64::_mm_prefetch(
                        self.words.as_ptr().add(addr as usize) as *const i8,
                        core::arch::x86_64::_MM_HINT_T0,
                    );
                }
                addr += LINE_WORDS_HOST;
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (base, n);
        }
    }

    /// Read `dst.len()` consecutive words starting at `base` (one lockstep
    /// team read of a chunk; each lane's load is individually atomic, the
    /// combination is not — exactly the GPU's guarantee).
    #[inline]
    pub fn read_words(&self, base: WordAddr, dst: &mut [u64]) {
        for (i, slot) in dst.iter_mut().enumerate() {
            *slot = self.read(base + i as u32);
        }
    }
}

impl std::fmt::Debug for WordPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WordPool")
            .field("capacity", &self.capacity())
            .field("used", &self.used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_bumps_and_aligns() {
        let p = WordPool::new(1024);
        let a = p.alloc(10, 1).unwrap();
        assert_eq!(a, 0);
        let b = p.alloc(16, 16).unwrap();
        assert_eq!(b, 16, "should round up to next 16-word boundary");
        let c = p.alloc(16, 16).unwrap();
        assert_eq!(c, 32);
        assert_eq!(p.used(), 48);
    }

    #[test]
    fn alloc_exhaustion_is_an_error_not_a_panic() {
        let p = WordPool::new(32);
        assert!(p.alloc(32, 1).is_ok());
        let err = p.alloc(1, 1).unwrap_err();
        assert_eq!(err.capacity, 32);
        assert_eq!(err.requested, 1);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn alloc_exhaustion_via_alignment_padding() {
        let p = WordPool::new(20);
        assert_eq!(p.alloc(4, 1).unwrap(), 0);
        // 16-word-aligned 16-word block would end at 32 > 20.
        assert!(p.alloc(16, 16).is_err());
    }

    #[test]
    fn read_write_roundtrip() {
        let p = WordPool::new(64);
        p.write(7, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(p.read(7), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(p.read(8), 0, "fresh words are zeroed");
    }

    #[test]
    fn cas_success_and_failure() {
        let p = WordPool::new(8);
        p.write(0, 5);
        assert_eq!(p.cas(0, 5, 9), Ok(5));
        assert_eq!(p.read(0), 9);
        assert_eq!(p.cas(0, 5, 11), Err(9));
        assert_eq!(p.read(0), 9);
    }

    #[test]
    fn prefetch_is_a_safe_no_op_observably() {
        let p = WordPool::new(64);
        p.write(3, 77);
        p.prefetch(0, 16);
        p.prefetch(60, 100); // clipped at capacity
        p.prefetch(u32::MAX - 1, 8); // fully out of range
        assert_eq!(p.read(3), 77, "prefetch changes no data");
    }

    #[test]
    fn read_words_reads_consecutive() {
        let p = WordPool::new(64);
        for i in 0..32u32 {
            p.write(i, i as u64 * 10);
        }
        let mut buf = [0u64; 8];
        p.read_words(4, &mut buf);
        assert_eq!(buf, [40, 50, 60, 70, 80, 90, 100, 110]);
    }

    #[test]
    fn concurrent_alloc_hands_out_disjoint_blocks() {
        let p = WordPool::new(16 * 1024);
        let bases: Vec<WordAddr> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..100).map(|_| p.alloc(16, 16).unwrap()).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let unique: std::collections::HashSet<_> = bases.iter().collect();
        assert_eq!(unique.len(), 400, "all allocations disjoint");
        assert!(bases.iter().all(|b| b % 16 == 0));
    }
}
