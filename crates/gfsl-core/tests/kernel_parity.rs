//! Differential tests: the SWAR ballot kernel against the scalar reference.
//!
//! [`BallotKernel::Scalar`] is the per-lane reference loop kept purely as an
//! oracle; [`BallotKernel::Swar`] is the branch-free hot path. Both operate
//! on the same already-probed chunk snapshot, so a kernel swap must change
//! *nothing observable*: not one reply, not one membership bit, and — under
//! a scripted chaos schedule — not one bit of the execution trace hash.
//! That last property is the strongest witness: the FNV trace (the shared
//! `gfsl_rng::fnv` word-wise fold) folds every granted memory-access turn
//! of every team in execution order, so equal hashes mean the two kernels
//! drove byte-identical access schedules.

use std::sync::{Condvar, Mutex};

use gfsl::chaos::{ChaosController, ChaosOptions};
use gfsl::{BallotKernel, BatchOp, BatchReply, Gfsl, GfslParams, Prefetch, TeamSize};
use proptest::prelude::*;

/// Keys per worker class in the scripted runs: enough to force several
/// splits of a 14-data-entry chunk, then merges on the way back down.
const KEYS_PER_CLASS: u32 = 40;

/// Deterministic script bytes from a seed (xorshift; no global RNG state so
/// the pinned seeds replay forever).
fn script_from_seed(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 24) as u8
        })
        .collect()
}

/// Run the two-worker split/merge/read workload under one scripted chaos
/// schedule and return the replay witnesses: the trace hash and the final
/// membership.
///
/// Handle creation is serialized through a gate (worker 0 first) because a
/// handle's raise-coin RNG stream is assigned at creation; leaving that to
/// OS spawn order would compare two *different* workloads, not two kernels.
///
/// With `locality` on, the run additionally enables the multi-level finger,
/// foresight prefetch, and chunk reclamation — so the cached descent path
/// is continuously split, merged, retired, and recycled underneath the
/// fingers, and the in-run membership asserts witness that no operation
/// ever trusted a stale cached chunk.
fn scripted_run(kernel: BallotKernel, script: Vec<u8>, locality: bool) -> (u64, Vec<u32>) {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        kernel,
        fingers: locality,
        prefetch: if locality { Prefetch::Next } else { Prefetch::Off },
        reclaim: locality,
        ..Default::default()
    })
    .expect("params valid");
    let ctl = ChaosController::new(
        2,
        ChaosOptions {
            script: Some(script),
            max_stall_turns: 3,
            ..Default::default()
        },
    );
    let gate = (Mutex::new(0u32), Condvar::new());

    std::thread::scope(|s| {
        for t in 0..2u32 {
            let list = &list;
            let ctl = &ctl;
            let gate = &gate;
            s.spawn(move || {
                let mut turn = gate.0.lock().unwrap();
                while *turn != t {
                    turn = gate.1.wait(turn).unwrap();
                }
                let mut h = list.handle_with(ctl.probe(t as usize));
                *turn += 1;
                gate.1.notify_all();
                drop(turn);

                // Insert this class's keys, remove all but every 4th, then
                // probe membership and a range count so the lock-free read
                // ballots (eq / in-range / live) sit on the traced path too.
                for i in 0..KEYS_PER_CLASS {
                    let k = i * 2 + t + 1;
                    h.insert(k, k * 10).expect("pool");
                }
                for i in 0..KEYS_PER_CLASS {
                    if i % 4 != 0 {
                        let k = i * 2 + t + 1;
                        assert!(h.remove(k), "remove {k}");
                    }
                }
                for i in 0..KEYS_PER_CLASS {
                    let k = i * 2 + t + 1;
                    assert_eq!(h.get(k).is_some(), i % 4 == 0, "get {k}");
                }
                // The range also sees the peer's (in-flight) class, so only
                // this class's 10 survivors are a guaranteed lower bound;
                // the exact value is part of the trace-hash comparison.
                let counted = h.count_range(1, KEYS_PER_CLASS * 2);
                assert!(
                    (10..=50).contains(&counted),
                    "count {counted} outside feasible window"
                );
            });
        }
    });

    list.assert_valid();
    (ctl.trace_hash(), list.keys())
}

/// Tentpole acceptance check: for pinned schedules, a scalar-kernel run and
/// a SWAR-kernel run produce bit-identical chaos trace hashes (and, a
/// fortiori, identical final states).
#[test]
fn scripted_chaos_traces_are_bit_identical_across_kernels() {
    for seed in 0..6u64 {
        let script = script_from_seed(seed, 64);
        let scalar = scripted_run(BallotKernel::Scalar, script.clone(), false);
        let swar = scripted_run(BallotKernel::Swar, script, false);
        assert_eq!(
            scalar, swar,
            "kernel changed the observable schedule under script seed {seed}"
        );
    }
}

/// Finger-invalidation chaos: under scripted schedules whose splits,
/// merges, and reclamation churn the cached descent path, a fingered run
/// must (a) pass every in-run membership assert — a stale finger would
/// surface as a wrong `get`/`remove` — and (b) finish with exactly the
/// membership of the unfingered run (the workload's final state is
/// schedule-independent), and (c) replay bit-identically, since the finger
/// is deterministic state.
#[test]
fn fingered_scripted_chaos_never_observes_stale_chunks() {
    for seed in 0..4u64 {
        let script = script_from_seed(seed ^ 0xF16E5, 64);
        let plain = scripted_run(BallotKernel::Swar, script.clone(), false);
        let fingered = scripted_run(BallotKernel::Swar, script.clone(), true);
        assert_eq!(
            plain.1, fingered.1,
            "fingers changed final membership under script seed {seed}"
        );
        let replay = scripted_run(BallotKernel::Swar, script, true);
        assert_eq!(fingered, replay, "fingered scripted run must replay identically");
    }
}

/// Replay sanity for the harness itself: the same kernel under the same
/// script is deterministic (otherwise the cross-kernel assertion above
/// could pass or fail by accident).
#[test]
fn scripted_run_replays_identically_with_one_kernel() {
    let script = script_from_seed(0xD1FF, 48);
    let a = scripted_run(BallotKernel::Swar, script.clone(), false);
    let b = scripted_run(BallotKernel::Swar, script, false);
    assert_eq!(a, b, "scripted harness must be deterministic");
}

/// One batch op over the interesting key space: a dense band that forces
/// splits and merges, plus the keys adjacent to both sentinels (`-∞` lives
/// in lane 0 as key 0; `EMPTY` is key `u32::MAX`). Reserved keys 0 and
/// `u32::MAX` are included deliberately: both kernels must agree on typed
/// failures too.
fn key_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        4 => 1..=120u32,
        1 => Just(1u32),
        1 => (0..=3u32).prop_map(|d| u32::MAX - d),
        1 => Just(0u32),
    ]
}

fn op_strategy() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        3 => (key_strategy(), any::<u32>()).prop_map(|(k, v)| BatchOp::Insert(k, v)),
        2 => key_strategy().prop_map(BatchOp::Get),
        2 => key_strategy().prop_map(BatchOp::Remove),
        1 => (key_strategy(), 0..=140u32).prop_map(|(a, b)| BatchOp::CountRange(a.min(b), a.max(b))),
    ]
}

/// Apply one history to a fresh list under the given configuration and
/// return every reply plus the final membership.
fn apply_history(
    ops: &[BatchOp],
    kernel: BallotKernel,
    hints: bool,
    fingers: bool,
) -> (Vec<BatchReply>, Vec<u32>) {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        kernel,
        hints,
        fingers,
        prefetch: if fingers { Prefetch::Next } else { Prefetch::Off },
        ..Default::default()
    })
    .expect("params valid");
    let mut h = list.handle();
    let mut out = Vec::new();
    h.execute_batch(ops, &mut out);
    list.assert_valid();
    (out, list.keys())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random single-thread histories (including sentinel-adjacent and
    /// reserved keys) produce identical replies and identical final
    /// membership under the scalar reference, the SWAR kernel, the SWAR
    /// kernel with the hint cache enabled, and the SWAR kernel with the
    /// multi-level finger and foresight prefetch on. The history's inserts
    /// and removes split and merge chunks directly on the cached path, so
    /// this is the single-threaded finger-invalidation check: a finger
    /// surviving a split/merge it should have rejected would change a reply.
    #[test]
    fn kernels_agree_on_random_histories(
        ops in proptest::collection::vec(op_strategy(), 0..250),
    ) {
        let scalar = apply_history(&ops, BallotKernel::Scalar, false, false);
        let swar = apply_history(&ops, BallotKernel::Swar, false, false);
        prop_assert_eq!(&scalar, &swar, "scalar vs swar diverged");
        let hinted = apply_history(&ops, BallotKernel::Swar, true, false);
        prop_assert_eq!(&scalar, &hinted, "hinted traversal changed results");
        let fingered = apply_history(&ops, BallotKernel::Swar, false, true);
        prop_assert_eq!(&scalar, &fingered, "fingered traversal changed results");
    }
}

/// Deterministic sentinel-edge sweep across the full kernel × hints grid:
/// the first user key sits in the lane right of `-∞`, the largest legal key
/// (`u32::MAX - 1`) sits left of the EMPTY right-packing, and the
/// whole-keyspace range count must see exactly the live set in every
/// configuration.
#[test]
fn sentinel_edge_lanes_agree_across_configs() {
    let mut outputs: Vec<(Vec<BatchReply>, Vec<u32>)> = Vec::new();
    for kernel in [BallotKernel::Scalar, BallotKernel::Swar] {
        for (hints, fingers) in [(false, false), (true, false), (false, true)] {
            let list = Gfsl::new(GfslParams {
                team_size: TeamSize::Sixteen,
                pool_chunks: 1 << 12,
                kernel,
                hints,
                fingers,
                prefetch: if fingers { Prefetch::Next } else { Prefetch::Off },
                ..Default::default()
            })
            .expect("params valid");
            let mut h = list.handle();
            let mut out = Vec::new();
            let mut ops: Vec<BatchOp> = vec![BatchOp::Insert(1, 11), BatchOp::Insert(u32::MAX - 1, 99)];
            ops.extend((10..=60).map(|k| BatchOp::Insert(k, k)));
            ops.extend([
                BatchOp::Get(1),
                BatchOp::Get(2),
                BatchOp::Get(u32::MAX - 1),
                BatchOp::Get(u32::MAX - 2),
                BatchOp::CountRange(1, u32::MAX - 1),
                BatchOp::Remove(1),
                BatchOp::Remove(u32::MAX - 1),
            ]);
            ops.extend((10..=60).map(BatchOp::Remove));
            ops.push(BatchOp::CountRange(1, u32::MAX - 1));
            h.execute_batch(&ops, &mut out);
            list.assert_valid();
            let keys = list.keys();
            assert!(keys.is_empty(), "everything removed ({kernel:?}, hints={hints})");
            outputs.push((out, keys));
        }
    }
    let first = &outputs[0];
    assert_eq!(first.0[53], BatchReply::Got(Some(11)), "get(1) next to -inf");
    assert_eq!(first.0[55], BatchReply::Got(Some(99)), "get(MAX-1) next to EMPTY");
    assert_eq!(first.0[57], BatchReply::Counted(53), "full-span count");
    for other in &outputs[1..] {
        assert_eq!(first, other, "configurations diverged");
    }
}
