//! Tunable parameters of a GFSL instance.

use gfsl_gpu_mem::Prefetch;
use gfsl_simt::{BallotKernel, TeamSize};

/// Configuration for a [`crate::Gfsl`] instance.
///
/// Defaults reproduce the paper's best configuration (§5.2): 32-entry chunks
/// (GFSL-32), `p_chunk ≈ 1`, merge threshold `DSIZE/3`.
#[derive(Debug, Clone, Copy)]
pub struct GfslParams {
    /// Team size = chunk entry count (16 or 32).
    pub team_size: TeamSize,
    /// Probability that a split raises a key to the next level. The paper
    /// finds `p_chunk ≈ 1` best in all tested mixtures.
    pub p_chunk: f64,
    /// A chunk is merged when a deletion leaves it with at most
    /// `DSIZE / merge_divisor` live entries (paper: 3).
    pub merge_divisor: u32,
    /// Pool capacity in chunks. The paper preallocates the device pool at
    /// initialization; splits and merges allocate from it. With
    /// [`reclaim`](Self::reclaim) enabled, unlinked zombie chunks are
    /// recycled back into circulation, so the bump pointer stops at the
    /// churn high-water mark instead of growing forever.
    pub pool_chunks: u32,
    /// Seed for the per-handle raise-coin RNG streams.
    pub seed: u64,
    /// Which ballot kernel evaluates the chunk votes. [`BallotKernel::Swar`]
    /// (default) is the branch-free hot path; [`BallotKernel::Scalar`] is
    /// the per-lane reference loop kept as the differential oracle. Both
    /// compute identical votes (proptested), so this is purely a speed knob.
    pub kernel: BallotKernel,
    /// Enable the per-handle traversal hint cache: lock-free reads first try
    /// to start their bottom-level lateral walk at the last bottom chunk
    /// this handle touched (validated via the versioned lock word), falling
    /// back to a full descent on miss. Off by default: it pays off when a
    /// handle's keys arrive in sorted/clustered order (batched serving), and
    /// costs one wasted chunk read per miss otherwise.
    pub hints: bool,
    /// Enable the per-handle multi-level *finger*: in addition to the
    /// bottom-level hint, each handle caches the `(chunk, lock word)` pair
    /// it descended through at every level. A hint miss then restarts from
    /// the deepest still-valid cached level instead of the head, and
    /// hinted lateral walks skim `(max, next)` words instead of reading
    /// whole chunks while laterally far from the key. Implies the hint
    /// behaviour of [`hints`](Self::hints) for the bottom level. Off by
    /// default, same trade-off as `hints`.
    pub fingers: bool,
    /// Software-prefetch policy for traversals: with [`Prefetch::Next`],
    /// hinted walks, descents, and range scans prefetch the predicted next
    /// chunk (host `_mm_prefetch` plus the modeled L2 fill in counting
    /// probes) before finishing work on the current one. Off by default.
    pub prefetch: Prefetch,
    /// Enable epoch-based reclamation of unlinked zombie chunks (recycled
    /// through `alloc_chunk`). See `gfsl_gpu_mem::reclaim` and DESIGN.md for
    /// the safety argument.
    pub reclaim: bool,
    /// Enable panic containment and quarantine (DESIGN.md §13). With this
    /// on, the `try_*` entry points run each operation inside an unwind
    /// boundary: a panic mid-protocol (e.g. a chaos-injected crash) moves
    /// the held chunks into a quarantine set — with their pre-op snapshots
    /// and the op's journal stub — and returns a typed
    /// [`crate::skiplist::OpAbort`] instead of poisoning the structure, and
    /// waiters on a quarantined chunk abort cleanly instead of spinning.
    /// Off by default: the plain entry points keep PR 1's fail-fast
    /// poisoning semantics, and zero containment bookkeeping runs.
    pub contain: bool,
    /// Bounded-retry budget for one contained operation: total lock-wait
    /// and certification retries an op may spend before aborting with
    /// [`crate::skiplist::AbortReason::RetryBudget`]. `0` = unbounded
    /// (fall back to [`crate::skiplist::LOCK_RETRY_BOUND`]). Only consulted
    /// when [`contain`](Self::contain) is on.
    pub retry_budget: u32,
    /// Wall-clock deadline for one contained operation, in nanoseconds;
    /// checked at the same wait points as the retry budget. `0` = none.
    /// Only consulted when [`contain`](Self::contain) is on.
    pub op_deadline_ns: u64,
    /// Enable multiversion reads (DESIGN.md §19): a global version clock,
    /// per-chunk copy-on-write version chains captured at lock acquisition,
    /// and `pin_version` read tickets that serve `get`/`range`/snapshot
    /// walks at a frozen version without blocking on writer locks. Off by
    /// default: writers then skip all capture bookkeeping and versioned
    /// read entry points return `None`.
    pub mvcc: bool,
}

impl Default for GfslParams {
    fn default() -> Self {
        GfslParams {
            team_size: TeamSize::ThirtyTwo,
            p_chunk: 1.0,
            merge_divisor: 3,
            pool_chunks: 1 << 16,
            seed: 0x9E37_79B9_7F4A_7C15,
            kernel: BallotKernel::Swar,
            hints: false,
            fingers: false,
            prefetch: Prefetch::Off,
            reclaim: true,
            contain: false,
            retry_budget: 0,
            op_deadline_ns: 0,
            mvcc: false,
        }
    }
}

impl GfslParams {
    /// Convenience: the default configuration sized to hold about
    /// `expected_keys` keys (chunks average ~62% full under random inserts;
    /// we budget 2.5 chunks-per-chunk's-worth of keys to absorb splits,
    /// zombies, and upper levels).
    pub fn sized_for(expected_keys: u64) -> GfslParams {
        let mut p = GfslParams::default();
        p.pool_chunks = Self::chunks_for(expected_keys, p.team_size);
        p
    }

    /// Pool size heuristic shared by `sized_for` and the harness.
    pub fn chunks_for(expected_keys: u64, team_size: TeamSize) -> u32 {
        let per_chunk = (team_size.dsize() as u64 * 5 / 10).max(1);
        let chunks = expected_keys / per_chunk + expected_keys / (per_chunk * per_chunk) + 4096;
        chunks.min(u32::MAX as u64 / team_size.lanes() as u64) as u32
    }

    /// Whether reads should take the hinted dispatch path: fingers imply
    /// bottom-level hinting, so either knob selects it.
    pub fn hinted_dispatch(&self) -> bool {
        self.hints || self.fingers
    }

    /// Number of entries per chunk (`N`).
    pub fn lanes(&self) -> usize {
        self.team_size.lanes()
    }

    /// Data entries per chunk (`DSIZE`).
    pub fn dsize(&self) -> usize {
        self.team_size.dsize()
    }

    /// Merge threshold: merge when `live entries <= threshold` after a
    /// removal would leave the chunk at or below it.
    pub fn merge_threshold(&self) -> u32 {
        self.dsize() as u32 / self.merge_divisor.max(1)
    }

    /// Maximum skiplist height: limited to the team size because the
    /// traversal path is held one-level-per-lane (paper §4.2.2: ample —
    /// 16 levels of 16-entry chunks cover ~10^16 keys).
    pub fn max_levels(&self) -> usize {
        self.lanes()
    }

    /// Basic sanity checks; called by `Gfsl::new`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.p_chunk) {
            return Err(format!("p_chunk must be in [0,1], got {}", self.p_chunk));
        }
        if self.merge_divisor < 2 {
            return Err("merge_divisor must be >= 2 (threshold must stay below DSIZE/2 so a split always leaves chunks above it)".into());
        }
        if self.pool_chunks < self.max_levels() as u32 + 1 {
            return Err("pool too small for level sentinels".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_best_config() {
        let p = GfslParams::default();
        assert_eq!(p.team_size, TeamSize::ThirtyTwo);
        assert_eq!(p.lanes(), 32);
        assert_eq!(p.dsize(), 30);
        assert_eq!(p.merge_threshold(), 10);
        assert_eq!(p.max_levels(), 32);
        assert_eq!(p.p_chunk, 1.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn sixteen_entry_geometry() {
        let p = GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        };
        assert_eq!(p.dsize(), 14);
        assert_eq!(p.merge_threshold(), 4);
        assert_eq!(p.max_levels(), 16);
    }

    #[test]
    fn containment_defaults_off() {
        // PR 1's poisoning semantics must remain the default behavior.
        let p = GfslParams::default();
        assert!(!p.contain);
        assert_eq!(p.retry_budget, 0);
        assert_eq!(p.op_deadline_ns, 0);
    }

    #[test]
    fn mvcc_defaults_off() {
        // Versioned reads are opt-in: the default config must not pay for
        // capture bookkeeping on the write path.
        assert!(!GfslParams::default().mvcc);
    }

    #[test]
    fn locality_knobs_default_off_and_fingers_imply_hinted_dispatch() {
        let p = GfslParams::default();
        assert!(!p.fingers);
        assert_eq!(p.prefetch, Prefetch::Off);
        assert!(!p.hinted_dispatch());
        let p = GfslParams {
            fingers: true,
            ..Default::default()
        };
        assert!(p.hinted_dispatch(), "fingers select the hinted path");
        let p = GfslParams {
            hints: true,
            ..Default::default()
        };
        assert!(p.hinted_dispatch());
    }

    #[test]
    fn sized_for_scales_with_keys() {
        let small = GfslParams::sized_for(1_000);
        let big = GfslParams::sized_for(10_000_000);
        assert!(big.pool_chunks > small.pool_chunks);
        // Enough chunks to actually hold the keys even at minimum fill.
        let min_fill = big.merge_threshold() as u64;
        assert!(big.pool_chunks as u64 * min_fill.max(1) >= 10_000_000 / 3);
    }

    #[test]
    fn validate_rejects_bad_params() {
        let p = GfslParams {
            p_chunk: 1.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = GfslParams {
            merge_divisor: 1,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = GfslParams {
            pool_chunks: 3,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }
}
