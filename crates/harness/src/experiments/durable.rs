//! Durability tier: group-commit cost per fsync policy, and crash-restart
//! recovery. Not a paper artifact — this measures the `gfsl-durable`
//! subsystem layered on top of the paper's structure.
//!
//! **Group-commit table.** One serve pipeline per [`DurabilityContract`],
//! write-heavy mix, acks gated on the WAL sink: every epoch's effective
//! writes are appended and synced before any of its requests complete, so
//! the end-to-end latency histogram *is* the ack latency, durability
//! included. The interesting columns are the throughput ratio vs the
//! `buffered` floor (what the sync in the contract costs) and records per
//! group commit (how much of that cost the epoch batcher amortizes).
//!
//! **Recovery table.** Each engine is dropped as-is after its run — a
//! checkpoint of the prefill plus a WAL tail of everything served — then
//! reopened cold, timing the full pipeline: checkpoint page verification,
//! rebuild via sorted bulk load, LSN-gated tail replay, validation walk.

use std::time::Instant;

use gfsl::{GfslParams, TeamSize};
use gfsl_durable::{destroy, DurabilityContract, DurableConfig, DurableGfsl};
use gfsl_serve::{serve_durable, ClosedSource, ExecMode, Fifo, ServeConfig};
use gfsl_workload::{ClosedLoop, ServeMix};

use super::ExpConfig;
use crate::report::{mops, ratio, Table};

/// Write-heavy service mix: durability cost scales with effective writes,
/// so a lookup-dominated mix would mostly measure the structure again.
const MIX: ServeMix = ServeMix::new(30, 30, 40, 0, 0);

struct Cell {
    contract: DurabilityContract,
    report: gfsl_serve::ServiceReport,
    stats: gfsl_durable::WalStats,
    ckpt_pairs: u64,
    replayed: u64,
    recovered_keys: u64,
    recovery_s: f64,
}

fn measure(cfg: &ExpConfig, contract: DurabilityContract, range: u32, n_ops: usize) -> Cell {
    let dir = std::env::temp_dir().join(format!(
        "gfsl_bench_durable_{}_{}",
        contract.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let dcfg = DurableConfig {
        contract,
        // Large segments keep rotation off the measured path; the serve
        // soak covers small-segment churn.
        seg_records: 1 << 16,
        params: GfslParams {
            team_size: TeamSize::ThirtyTwo,
            pool_chunks: GfslParams::chunks_for(u64::from(range) + n_ops as u64, TeamSize::ThirtyTwo),
            seed: cfg.seed,
            ..Default::default()
        },
        ..DurableConfig::new(&dir)
    };
    let mut eng = DurableGfsl::create(&dcfg).expect("create durable engine");
    // Prefill straight into the structure (unlogged — these writes predate
    // the measurement), then checkpoint so recovery sees the realistic
    // shape: a checkpoint base plus a WAL tail of exactly the served ops.
    {
        let mut h = eng.list().handle();
        for k in (1..range).filter(|k| k % 2 == 0) {
            h.try_insert(k, k).expect("prefill");
        }
    }
    let ckpt_pairs = eng.checkpoint().expect("prefill checkpoint").n_pairs;

    let max_batch = 512;
    let scfg = ServeConfig {
        workers: cfg
            .workers
            .min(std::thread::available_parallelism().map_or(1, |p| p.get())),
        epoch_ns: 200_000,
        batch_ops: cfg.workers * max_batch,
        max_batch,
        intake_cap: (cfg.workers * max_batch * 4).max(8192),
        seed: cfg.seed,
        exec: ExecMode::Measured,
    };
    let clients = (4 * cfg.workers as u32 * 512).min((n_ops / 4).max(1) as u32);
    let pop = ClosedLoop::new(
        clients,
        (n_ops as u64).div_ceil(u64::from(clients)),
        0,
        MIX,
        range,
        cfg.seed,
    );
    let mut src = ClosedSource::new(pop, 1_000);
    let (list, mut sink) = eng.serve_parts();
    let report = serve_durable(list, &scfg, &mut Fifo::default(), &mut src, &mut sink);
    let stats = eng.wal_stats();

    // Crash-restart: drop the engine where it stands and reopen cold.
    drop(eng);
    let t0 = Instant::now();
    let (eng, rec) = DurableGfsl::open(&dcfg).expect("recovery");
    let recovery_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        rec.replayed + rec.redundant_replays,
        stats.records,
        "recovery must replay the whole served WAL tail"
    );
    drop(eng);
    destroy(&dir).expect("cleanup");
    Cell {
        contract,
        report,
        stats,
        ckpt_pairs,
        replayed: rec.replayed,
        recovered_keys: rec.recovered_keys,
        recovery_s,
    }
}

/// Run the durable experiment: the group-commit policy table and the
/// crash-restart recovery table.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let range = cfg.anchor_range();
    let n_ops = cfg
        .ops_override
        .unwrap_or(if cfg.quick { 120_000 } else { 600_000 });

    // Weakest contract first: it is the denominator of every ratio.
    let cells: Vec<Cell> = DurabilityContract::ALL
        .iter()
        .rev()
        .map(|&c| measure(cfg, c, range, n_ops))
        .collect();
    let floor = cells[0].report.metrics.mops().max(f64::MIN_POSITIVE);

    let mut t = Table::new(
        "Durable serve: group commit vs fsync policy ([30,30,40], anchor range)",
        &[
            "contract", "MOPS", "vs none", "ack p50 us", "ack p99 us", "commits",
            "records", "recs/commit", "syncs",
        ],
    );
    for c in &cells {
        let m = &c.report.metrics;
        t.row(vec![
            c.contract.name().into(),
            mops(m.mops()),
            ratio(m.mops() / floor),
            format!("{:.1}", m.latency.p50_ns() as f64 / 1.0e3),
            format!("{:.1}", m.latency.p99_ns() as f64 / 1.0e3),
            c.stats.group_commits.to_string(),
            c.stats.records.to_string(),
            format!(
                "{:.1}",
                c.stats.records as f64 / c.stats.group_commits.max(1) as f64
            ),
            c.stats.syncs.to_string(),
        ]);
    }
    t.attach("wal_stats", &cells.iter().map(|c| c.stats).collect::<Vec<_>>());

    let mut r = Table::new(
        "Durable recovery: checkpoint base + WAL-tail replay, cold reopen",
        &["contract", "ckpt pairs", "tail replayed", "keys", "recovery ms", "replay Mrec/s"],
    );
    for c in &cells {
        r.row(vec![
            c.contract.name().into(),
            c.ckpt_pairs.to_string(),
            c.replayed.to_string(),
            c.recovered_keys.to_string(),
            format!("{:.1}", c.recovery_s * 1.0e3),
            format!("{:.2}", c.replayed as f64 / c.recovery_s.max(1e-9) / 1.0e6),
        ]);
    }
    vec![t, r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durable_experiment_runs_tiny() {
        let cfg = ExpConfig::tiny(2);
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        let commit = &tables[0];
        assert_eq!(commit.rows.len(), 3, "one row per durability contract");
        assert_eq!(commit.rows[0][0], "none", "ratio floor (no sync) leads");
        assert!(
            commit.attachments.iter().any(|(k, _)| k == "wal_stats"),
            "raw WAL counters ride along"
        );
        let rec = &tables[1];
        assert_eq!(rec.rows.len(), 3);
        for row in &rec.rows {
            assert!(row[2].parse::<u64>().unwrap() > 0, "served writes replay on reopen");
        }
    }
}
