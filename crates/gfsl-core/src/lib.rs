//! # GFSL — a GPU-friendly concurrent skiplist
//!
//! Rust reproduction of *"A GPU-Friendly Skiplist Algorithm"* (Nurit
//! Moscovici, Nachshon Cohen, Erez Petrank; PPoPP 2017 poster / PACT 2017).
//!
//! GFSL replaces the classic one-key-per-node skiplist with linked lists of
//! cache-line-aligned, array-based **chunks** traversed cooperatively by
//! lockstep **teams** of threads:
//!
//! * a chunk holds `N-2` sorted key-value pairs plus a `(max, next)` word
//!   and a lock word;
//! * a team of `N` lanes reads a whole chunk in one or two coalesced memory
//!   transactions and picks the next traversal step with a ballot (highest
//!   voting lane wins);
//! * `contains`/`get` are lock-free; `insert`/`remove` hold the bottom-level
//!   enclosing chunk's fine-grained lock for the duration and lock upper
//!   chunks one at a time;
//! * overfull chunks **split** (publishing the new chunk with a single
//!   atomic `(max, next)` store); underfull chunks **merge** right and
//!   become terminal **zombies**, unlinked lazily;
//! * keys are raised to level `i+1` only when a split creates a chunk in
//!   level `i`, with probability `p_chunk` (≈ 1 is best).
//!
//! On the CPU, one host thread drives one team (see `gfsl-simt`), and the
//! chunk pool is a flat array of `AtomicU64` words (see `gfsl-gpu-mem`), so
//! the concurrent algorithm runs for real — with exactly the per-word
//! atomicity the GPU provides.
//!
//! ## Quick start
//!
//! ```
//! use gfsl::{Gfsl, GfslParams};
//!
//! let list = Gfsl::new(GfslParams::sized_for(10_000)).unwrap();
//!
//! // Concurrent use: share &list across threads, one handle per thread.
//! std::thread::scope(|s| {
//!     for t in 0..2u32 {
//!         let list = &list;
//!         s.spawn(move || {
//!             let mut h = list.handle();
//!             for k in 1..500 {
//!                 h.insert(k * 2 + t, k).ok();
//!             }
//!         });
//!     }
//! });
//!
//! let mut h = list.handle();
//! assert!(h.contains(2));
//! ```
//!
//! ## Locking discipline (deadlock freedom)
//!
//! All lock acquisition orders are consistent with the partial order
//! *(any level-0 chunk) < (any upper chunk)* and *(chunk) < (its right
//! neighbour within a level)*:
//!
//! * `insert`/`remove` take the bottom-level enclosing chunk first and hold
//!   it for the whole operation;
//! * above that, at most one upper-level chunk is held at a time, plus —
//!   transiently, during splits and merges — its immediate right neighbour
//!   (always acquired left-to-right);
//! * the down-pointer repair pass locks level `i+1` chunks while holding
//!   level `i` locks (upward, consistent);
//! * `contains` takes no locks at all.
//!
//! No cycle can form, so every spin terminates once the holder finishes.

#![warn(missing_docs)]

pub mod batch;
pub mod bug_knobs;
pub mod bulk;
pub mod chaos;
pub mod chunk;
pub mod delete;
pub mod downptr;
pub mod export;
pub mod flat;
pub mod history;
pub mod insert;
pub mod introspect;
pub mod mc;
pub mod mvcc;
pub mod params;
pub mod range;
pub mod repair;
pub mod search;
pub mod skiplist;
pub mod split;
pub mod stats;
pub mod validate;

pub use batch::{BatchOp, BatchReply};
pub use chaos::{ChaosController, ChaosOptions, ChaosProbe};
pub use chunk::{Entry, KEY_INF, KEY_NEG_INF};
pub use history::{check_linearizable, HistoryClock, OpAction, OpRecord, Recorder};
pub use params::GfslParams;
pub use skiplist::{
    AbortReason, Error, Gfsl, GfslHandle, OpAbort, RepairStats, LOCK_RETRY_BOUND,
    STARVATION_RETRIES,
};
pub use flat::{EngineKind, FlatSkiplist, KvEngine};
pub use mc::{Counterexample, McConfig, McOp, McReport, Target};
pub use mvcc::{MvccStats, ReadTicket};
pub use introspect::{LevelShape, Shape};
pub use stats::{OpStats, FINGER_LEVELS};
pub use validate::Violation;

/// Re-exported crash-point seam (the named vulnerable windows of the lock
/// protocol that [`chaos`] injects faults at).
pub use gfsl_gpu_mem::CrashPoint;

/// Re-exported memory-probe seam, so downstream crates (e.g. the serving
/// front end) can write code generic over probes without a direct
/// `gfsl-gpu-mem` dependency.
pub use gfsl_gpu_mem::{MemProbe, NoProbe};

/// Re-exported team-size selector (chunk format): 16 or 32 entries.
pub use gfsl_simt::TeamSize;

/// Re-exported ballot-kernel selector (scalar reference loop vs branch-free
/// SWAR), the [`GfslParams::kernel`] knob.
pub use gfsl_simt::BallotKernel;

/// Re-exported software-prefetch policy, the [`GfslParams::prefetch`] knob.
pub use gfsl_gpu_mem::Prefetch;

/// Re-exported reclamation counters surfaced by [`Gfsl::reclaim_stats`].
pub use gfsl_gpu_mem::ReclaimStats;
