//! Hot-path engine grid: the ballot kernel (scalar reference vs SWAR)
//! crossed with the locality ladder — hinted dispatch, multi-level
//! fingers, software prefetch — plus the flat-bottom (B-Skiplist) engine
//! variant, measured head-to-head on three workloads. Not a paper
//! artifact — this tracks the host-side engine work layered on the
//! paper's structure:
//!
//! * **hot-band gets** — the read-heavy headline. Batches of point lookups
//!   clustered in a sliding hot band, the access shape the serve layer's
//!   key-sorted batching produces. Hinted dispatch turns most descents into
//!   one or two lateral steps from the cached bottom-level chunk; fingers
//!   extend the cache up the descent path and skim `(max, next)` words on
//!   lateral runs; prefetch overlaps the predicted next chunk's fetch with
//!   the current ballot.
//! * **fresh inserts** — update-path cost. Writes run the locked find's own
//!   descent, so this row isolates the kernel and finger effect on the
//!   write path.
//! * **sliding-window churn** — insert+remove with reclamation on, the
//!   workload that exercises zombie retirement, the head-edge sweep, and
//!   pool recycling. Columns include the reclaim counters so the recycling
//!   behaviour rides along in `BENCH_hotpath.json`.
//!
//! The acceptance bars are **asserted in-run**, not eyeballed:
//!
//! * quick/CI cell: the fingered configurations must not lose to the
//!   hinted baseline on hot-band gets;
//! * full runs: `swar+fingers+pf` must beat the previously committed
//!   swar+hints headline ([`COMMITTED_GET_MOPS`]), and at least one
//!   locality configuration (fingers, prefetch, or flat-bottom) must beat
//!   the committed churn plateau ([`COMMITTED_CHURN_MOPS`]) by >= 15%.

use std::time::Instant;

use gfsl::{
    BallotKernel, BatchOp, BatchReply, EngineKind, FlatSkiplist, Gfsl, GfslHandle, GfslParams,
    KvEngine, MemProbe, OpStats, Prefetch, FINGER_LEVELS,
};
use gfsl_workload::SplitMix64;
use serde::Serialize;

use super::ExpConfig;
use crate::report::{mops, pct, ratio, Table};

/// Operations per dispatched batch (a few warps' worth — the serve layer's
/// max-batch scale, and enough for the sort to cluster keys chunk-tight).
const BATCH: usize = 256;

/// Timed repetitions per cell; each cell reports its best rep. The grid's
/// gates compare cells measured seconds apart, and one-shot wall-clock
/// timings on a shared host swing far more than the effects under test —
/// best-of-N discards interference slowdowns (nothing makes a run read
/// *faster* than the engine allows). The first rep doubles as warm-up.
const REPS: usize = 3;

/// Headline committed in `results/BENCH_hotpath.json` before the locality
/// engine landed: swar+hints hot-band gets, full mode. The fingers+prefetch
/// configuration must beat it.
const COMMITTED_GET_MOPS: f64 = 5.28;

/// Churn plateau committed before the locality engine landed: every grid
/// configuration sat at ~0.72 MOPS. At least one locality configuration
/// must clear it by >= 15%.
const COMMITTED_CHURN_MOPS: f64 = 0.72;

/// One engine configuration in the locality grid.
#[derive(Debug, Clone, Copy)]
struct GridCfg {
    name: &'static str,
    engine: EngineKind,
    kernel: BallotKernel,
    hints: bool,
    fingers: bool,
    prefetch: Prefetch,
}

/// The grid, scalar-reference baseline first, then the locality ladder,
/// then the flat-bottom challenger.
fn grid() -> [GridCfg; 7] {
    let base = GridCfg {
        name: "",
        engine: EngineKind::Gfsl,
        kernel: BallotKernel::Scalar,
        hints: false,
        fingers: false,
        prefetch: Prefetch::Off,
    };
    [
        GridCfg { name: "scalar", ..base },
        GridCfg { name: "scalar+hints", hints: true, ..base },
        GridCfg { name: "swar", kernel: BallotKernel::Swar, ..base },
        GridCfg { name: "swar+hints", kernel: BallotKernel::Swar, hints: true, ..base },
        GridCfg {
            name: "swar+fingers",
            kernel: BallotKernel::Swar,
            fingers: true,
            ..base
        },
        GridCfg {
            name: "swar+fingers+pf",
            kernel: BallotKernel::Swar,
            fingers: true,
            prefetch: Prefetch::Next,
            ..base
        },
        GridCfg {
            name: "flat",
            engine: EngineKind::FlatBottom,
            kernel: BallotKernel::Swar,
            ..base
        },
    ]
}

fn params_for(cfg: &ExpConfig, g: GridCfg, expected_keys: u64) -> GfslParams {
    let mut p = GfslParams {
        kernel: g.kernel,
        hints: g.hints,
        fingers: g.fingers,
        prefetch: g.prefetch,
        seed: cfg.seed,
        ..Default::default()
    };
    p.pool_chunks = GfslParams::chunks_for(expected_keys * 2, p.team_size);
    p
}

/// Dispatch one batch through the configuration's entry point.
fn run_batch<P: MemProbe>(
    h: &mut GfslHandle<'_, P>,
    hinted: bool,
    ops: &[BatchOp],
    out: &mut Vec<BatchReply>,
) {
    out.clear();
    if hinted {
        h.execute_batch_hinted(ops, out);
    } else {
        h.execute_batch(ops, out);
    }
}

/// Hot-band get batches, generated outside the timed loops so every
/// configuration measures pure engine cost on identical ops.
fn get_batches(cfg: &ExpConfig, range: u32) -> Vec<Vec<BatchOp>> {
    let n_ops = cfg.mixed_ops();
    let band = (range / 64).clamp(4 * BATCH as u32, 16_384).min(range - 1);
    let mut rng = SplitMix64::new(cfg.seed ^ 0x407);
    (0..n_ops.div_ceil(BATCH))
        .map(|_| {
            let lo = rng.below((range - band) as u64) as u32 + 1;
            (0..BATCH)
                .map(|_| BatchOp::Get(lo + rng.below(band as u64) as u32))
                .collect()
        })
        .collect()
}

/// Read-heavy workload result: throughput plus the locality counters.
struct GetResult {
    mops: f64,
    hit_rate: f64,
    stats: OpStats,
}

/// Read-heavy workload: batched gets clustered in a sliding hot band over a
/// half-full list.
fn hot_band_gets(cfg: &ExpConfig, g: GridCfg) -> GetResult {
    let range = cfg.anchor_range();
    let batches = get_batches(cfg, range);
    let total = (batches.len() * BATCH) as f64;
    match g.engine {
        EngineKind::Gfsl => {
            let params = params_for(cfg, g, range as u64 / 2);
            let hinted = params.hinted_dispatch();
            let list = Gfsl::prefilled(params, (1..range).filter(|k| k % 2 == 0)).unwrap();
            let mut h = list.handle();
            let mut out = Vec::with_capacity(BATCH);
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let start = Instant::now();
                for b in &batches {
                    run_batch(&mut h, hinted, b, &mut out);
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            let stats = h.stats();
            GetResult {
                mops: total / best / 1.0e6,
                hit_rate: stats.hint_hit_rate().unwrap_or(0.0),
                stats,
            }
        }
        EngineKind::FlatBottom => {
            let list = FlatSkiplist::new(g.kernel);
            let mut h = list.handle();
            for k in (1..range).filter(|k| k % 2 == 0) {
                h.insert(k, k);
            }
            let mut found = 0u64;
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                found = 0;
                let start = Instant::now();
                for b in &batches {
                    for op in b {
                        if let BatchOp::Get(k) = *op {
                            found += h.get(k).is_some() as u64;
                        }
                    }
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            assert!(found > 0, "hot band over a half-full list must hit");
            GetResult {
                mops: total / best / 1.0e6,
                hit_rate: 0.0,
                stats: OpStats::default(),
            }
        }
    }
}

/// Update-path workload: insert fresh (odd) keys into the half-full list in
/// randomly drawn batches.
fn fresh_inserts(cfg: &ExpConfig, g: GridCfg) -> f64 {
    let range = cfg.anchor_range();
    let n_ins = cfg.mixed_ops().min(range as usize / 4);

    // A shuffled prefix of the odd keys, cut into batches.
    let mut keys: Vec<u32> = (0..n_ins as u32).map(|i| i * 2 + 1).collect();
    let mut rng = SplitMix64::new(cfg.seed ^ 0x1475);
    for i in (1..keys.len()).rev() {
        keys.swap(i, rng.below(i as u64 + 1) as usize);
    }

    match g.engine {
        EngineKind::Gfsl => {
            let params = params_for(cfg, g, range as u64 / 2 + n_ins as u64);
            let hinted = params.hinted_dispatch();
            let list = Gfsl::prefilled(params, (1..range).filter(|k| k % 2 == 0)).unwrap();
            let mut h = list.handle();
            let batches: Vec<Vec<BatchOp>> = keys
                .chunks(BATCH)
                .map(|c| c.iter().map(|&k| BatchOp::Insert(k, k)).collect())
                .collect();
            let mut out = Vec::with_capacity(BATCH);
            let start = Instant::now();
            for b in &batches {
                run_batch(&mut h, hinted, b, &mut out);
            }
            n_ins as f64 / start.elapsed().as_secs_f64() / 1.0e6
        }
        EngineKind::FlatBottom => {
            let list = FlatSkiplist::new(g.kernel);
            let mut h = list.handle();
            for k in (1..range).filter(|k| k % 2 == 0) {
                h.insert(k, k);
            }
            let start = Instant::now();
            for &k in &keys {
                assert!(h.insert(k, k), "odd keys are fresh");
            }
            n_ins as f64 / start.elapsed().as_secs_f64() / 1.0e6
        }
    }
}

/// Churn workload result: throughput plus the reclamation (or, for the
/// flat engine, structural-churn) counters.
struct ChurnResult {
    mops: f64,
    /// `None` for the flat engine (no chunk pool; see `flat_shape` meta).
    reclaim: Option<(u64, u64, u32, u32)>,
}

/// Sliding-window churn with reclamation on: monotone insert+remove pairs
/// whose zombie runs park behind the level sentinels — the workload that
/// needs the reclaim pass's head-edge sweep to recycle anything at all.
fn window_churn(cfg: &ExpConfig, g: GridCfg) -> ChurnResult {
    let window = (cfg.anchor_range() / 8).clamp(256, 4_096);
    let pairs = (cfg.mixed_ops() / 2).max(window as usize);
    match g.engine {
        EngineKind::Gfsl => {
            let params = GfslParams {
                reclaim: true,
                ..params_for(cfg, g, window as u64 * 2)
            };
            let pool = params.pool_chunks;
            let list = Gfsl::new(params).unwrap();
            let mut h = list.handle();
            for k in 1..=window {
                h.insert(k, k).unwrap();
            }
            // The window keeps sliding across reps — steady state is the
            // point, so later reps measure the same regime as the first.
            let mut next = window + 1;
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let start = Instant::now();
                for _ in 0..pairs as u32 {
                    h.insert(next, next).expect("reclamation keeps the pool ahead of churn");
                    assert!(h.remove(next - window), "window key must be present");
                    next += 1;
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            let stats = list.reclaim_stats().expect("reclamation on");
            ChurnResult {
                mops: (pairs * 2) as f64 / best / 1.0e6,
                reclaim: Some((
                    stats.zombies_reclaimed,
                    stats.reused,
                    list.chunks_allocated(),
                    pool,
                )),
            }
        }
        EngineKind::FlatBottom => {
            let list = FlatSkiplist::new(g.kernel);
            let mut h = list.handle();
            for k in 1..=window {
                h.insert(k, k);
            }
            let mut next = window + 1;
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let start = Instant::now();
                for _ in 0..pairs as u32 {
                    assert!(h.insert(next, next));
                    assert!(h.remove(next - window), "window key must be present");
                    next += 1;
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            let shape = list.shape();
            assert!(shape.merges > 0, "sliding window must retire leaves");
            ChurnResult {
                mops: (pairs * 2) as f64 / best / 1.0e6,
                reclaim: None,
            }
        }
    }
}

/// Acceptance gates and headline numbers, attached to the bench JSON.
#[derive(Serialize)]
struct LocalityGates {
    committed_get_mops: f64,
    committed_churn_mops: f64,
    hinted_get_mops: f64,
    fingered_get_mops: f64,
    fingered_pf_get_mops: f64,
    best_locality_churn_mops: f64,
    best_locality_churn_cfg: String,
    asserted: bool,
    full_gates: bool,
}

/// Finger/prefetch effectiveness from the fingers+prefetch get run.
#[derive(Serialize)]
struct LocalityStats {
    hint_hit_rate: f64,
    finger_hit_rate: f64,
    finger_depth_hits: [u64; FINGER_LEVELS],
    finger_misses: u64,
    prefetch_issued: u64,
    skip_reads: u64,
}

/// Run the hot-path grid, render the two tables, and assert the locality
/// acceptance gates (skipped only for tiny in-test configs, which override
/// the op count and measure nothing meaningful).
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut perf = Table::new(
        "Hot path: engine x locality grid (hot-band gets, fresh inserts)",
        &["config", "get MOPS", "vs scalar", "hint hit", "finger hit", "insert MOPS", "vs scalar"],
    );
    let mut gets: Vec<GetResult> = Vec::new();
    let mut base_get = 0.0f64;
    let mut base_ins = 0.0f64;
    for g in grid() {
        let get = hot_band_gets(cfg, g);
        let ins = fresh_inserts(cfg, g);
        if base_get == 0.0 {
            base_get = get.mops;
            base_ins = ins;
        }
        let finger_col = if g.fingers {
            pct(get.stats.finger_hit_rate().unwrap_or(0.0))
        } else {
            "-".into()
        };
        perf.row(vec![
            g.name.to_string(),
            mops(get.mops),
            ratio(get.mops / base_get),
            if g.hints || g.fingers { pct(get.hit_rate) } else { "-".into() },
            finger_col,
            mops(ins),
            ratio(ins / base_ins),
        ]);
        gets.push(get);
    }

    let mut churn = Table::new(
        "Hot path: sliding-window churn with reclamation on",
        &["config", "churn MOPS", "vs scalar", "reclaimed", "reused", "high water", "pool"],
    );
    let mut churns: Vec<ChurnResult> = Vec::new();
    let mut base_churn = 0.0f64;
    for g in grid() {
        let r = window_churn(cfg, g);
        if base_churn == 0.0 {
            base_churn = r.mops;
        }
        let (reclaimed, reused, high, pool) = match r.reclaim {
            Some((a, b, c, d)) => (a.to_string(), b.to_string(), c.to_string(), d.to_string()),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        churn.row(vec![
            g.name.to_string(),
            mops(r.mops),
            ratio(r.mops / base_churn),
            reclaimed,
            reused,
            high,
            pool,
        ]);
        churns.push(r);
    }

    // Grid positions (fixed by `grid()`): 3 = swar+hints, 4 = swar+fingers,
    // 5 = swar+fingers+pf, 6 = flat.
    let hinted_get = gets[3].mops;
    let fingered_get = gets[4].mops.max(gets[5].mops);
    let fingered_pf_get = gets[5].mops;
    let locality_churn = [(4usize, "swar+fingers"), (5, "swar+fingers+pf"), (6, "flat")];
    let (best_churn_cfg, best_churn) = locality_churn
        .iter()
        .map(|&(i, name)| (name, churns[i].mops))
        .fold(("", 0.0f64), |acc, (n, m)| if m > acc.1 { (n, m) } else { acc });

    // Tiny in-test configs override the op count and run unoptimized; their
    // timings are noise, so only real quick/full invocations assert.
    let asserted = cfg.ops_override.is_none();
    if asserted {
        assert!(
            fingered_get >= hinted_get,
            "locality gate: fingered hot-band gets ({fingered_get:.2} MOPS) must not \
             lose to the hinted baseline ({hinted_get:.2} MOPS)"
        );
        if !cfg.quick {
            assert!(
                fingered_pf_get > COMMITTED_GET_MOPS,
                "locality gate: swar+fingers+pf ({fingered_pf_get:.2} MOPS) must beat \
                 the committed swar+hints headline ({COMMITTED_GET_MOPS} MOPS)"
            );
            assert!(
                best_churn >= 1.15 * COMMITTED_CHURN_MOPS,
                "locality gate: best locality churn ({best_churn_cfg} at {best_churn:.2} \
                 MOPS) must beat the committed plateau ({COMMITTED_CHURN_MOPS} MOPS) by >= 15%"
            );
        }
    }

    perf.attach(
        "locality_gates",
        &LocalityGates {
            committed_get_mops: COMMITTED_GET_MOPS,
            committed_churn_mops: COMMITTED_CHURN_MOPS,
            hinted_get_mops: hinted_get,
            fingered_get_mops: fingered_get,
            fingered_pf_get_mops: fingered_pf_get,
            best_locality_churn_mops: best_churn,
            best_locality_churn_cfg: best_churn_cfg.to_string(),
            asserted,
            full_gates: asserted && !cfg.quick,
        },
    );
    let s = &gets[5].stats;
    perf.attach(
        "locality_stats",
        &LocalityStats {
            hint_hit_rate: s.hint_hit_rate().unwrap_or(0.0),
            finger_hit_rate: s.finger_hit_rate().unwrap_or(0.0),
            finger_depth_hits: s.finger_depth_hits,
            finger_misses: s.finger_misses,
            prefetch_issued: s.prefetch_issued,
            skip_reads: s.skip_reads,
        },
    );

    vec![perf, churn]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_experiment_runs_tiny() {
        let cfg = ExpConfig::tiny(2);
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.rows.len(), 7, "one row per grid configuration");
            assert_eq!(t.rows[0][0], "scalar", "scalar baseline first");
            assert_eq!(t.rows[0][2], "1.00x", "baseline ratio is identity");
            assert_eq!(t.rows[3][0], "swar+hints");
            assert_eq!(t.rows[5][0], "swar+fingers+pf");
            assert_eq!(t.rows[6][0], "flat");
        }
        // The hinted configurations must actually exercise the hint cache.
        for row in [&tables[0].rows[1], &tables[0].rows[3]] {
            assert_ne!(row[3], "-", "hinted rows report a hit rate");
            assert_ne!(row[3], "0.0%", "sorted hot-band batches must hit");
        }
        // The fingered configurations must exercise both cache tiers.
        for row in [&tables[0].rows[4], &tables[0].rows[5]] {
            assert_ne!(row[3], "0.0%", "fingers subsume the bottom hint");
            assert_ne!(row[4], "-", "fingered rows report a finger hit rate");
            assert_ne!(row[4], "0.0%", "hot-band batches must validate fingers");
        }
        // Churn must have recycled: the reclaim counters are the artifact
        // (the flat engine has no chunk pool and reports dashes).
        for row in &tables[1].rows[..6] {
            assert_ne!(row[3], "0", "churn must reclaim zombies ({row:?})");
            assert_ne!(row[4], "0", "churn must reuse chunks ({row:?})");
        }
        assert_eq!(tables[1].rows[6][3], "-", "flat engine has no reclaim counters");
    }
}
