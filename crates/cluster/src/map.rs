//! The epoch-versioned shard map: who owns which key range, right now.
//!
//! The map is a sorted, contiguous cover of the user key space
//! `[1, KEY_INF)`. Every structural change (split, merge) installs a new
//! shard vector and bumps `epoch`; routed operations that raced the swap
//! detect it by re-reading the map and comparing shard *identity* (not just
//! epoch — an unrelated shard's migration must not bounce ops that still
//! route correctly).

use std::sync::Arc;

use gfsl::{KEY_INF, KEY_NEG_INF};

use crate::shard::Shard;

/// The routing table: an epoch counter plus the shard vector it versions.
pub(crate) struct MapInner {
    /// Bumped on every installed split/merge.
    pub epoch: u64,
    /// Shards in ascending `lo` order, contiguous over `[1, KEY_INF)`.
    pub shards: Vec<Arc<Shard>>,
}

impl MapInner {
    /// Index of the shard owning `key`. `key` must be a user key.
    pub fn find(&self, key: u32) -> usize {
        debug_assert!(key > KEY_NEG_INF && key < KEY_INF, "not a user key: {key}");
        // First shard whose lo exceeds key, minus one.
        self.shards.partition_point(|s| s.lo <= key) - 1
    }

    /// Index range of the shards overlapping the inclusive window
    /// `[lo, hi]`.
    pub fn overlapping(&self, lo: u32, hi: u32) -> std::ops::Range<usize> {
        debug_assert!(lo <= hi);
        self.find(lo)..self.find(hi) + 1
    }

    /// Assert the structural invariants of the cover (debug/test support).
    pub fn check(&self) {
        assert!(!self.shards.is_empty(), "shard map must cover the key space");
        assert_eq!(self.shards[0].lo, 1, "cover starts at the first user key");
        assert_eq!(
            self.shards.last().unwrap().hi,
            KEY_INF,
            "cover ends at KEY_INF"
        );
        for w in self.shards.windows(2) {
            assert_eq!(
                w[0].hi, w[1].lo,
                "shards {} and {} must be contiguous",
                w[0].id, w[1].id
            );
        }
    }
}
