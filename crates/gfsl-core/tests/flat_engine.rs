//! Differential and linearizability coverage for the flat-bottom
//! (B-Skiplist) engine — the same bar the chunked engine's knobs clear
//! before shipping off-by-default:
//!
//! * random histories against a `BTreeMap` oracle, across both ballot
//!   kernels and a tiny leaf capacity that forces constant splits/retires;
//! * the flat engine against the chunked GFSL on identical histories
//!   (engines must be observationally interchangeable behind [`KvEngine`]);
//! * a multi-threaded linearizability soak over a tight keyspace, checked
//!   with the repo's real-time-order checker.

use std::collections::{BTreeMap, HashMap};

use gfsl::history::{check_linearizable, HistoryClock, OpAction, OpRecord, Recorder};
use gfsl::{BallotKernel, FlatSkiplist, Gfsl, GfslParams, KvEngine, TeamSize};
use proptest::prelude::*;

/// One oracle-checked op over a band tight enough to split tiny leaves.
#[derive(Debug, Clone, Copy)]
enum FlatOp {
    Insert(u32, u32),
    Remove(u32),
    Get(u32),
    Range(u32, u32),
}

fn key_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        6 => 1..=160u32,
        1 => Just(1u32),
        1 => (0..=2u32).prop_map(|d| u32::MAX - 1 - d),
    ]
}

fn op_strategy() -> impl Strategy<Value = FlatOp> {
    prop_oneof![
        3 => (key_strategy(), any::<u32>()).prop_map(|(k, v)| FlatOp::Insert(k, v)),
        2 => key_strategy().prop_map(FlatOp::Remove),
        2 => key_strategy().prop_map(FlatOp::Get),
        1 => (key_strategy(), key_strategy()).prop_map(|(a, b)| FlatOp::Range(a.min(b), a.max(b))),
    ]
}

/// Drive one history through any [`KvEngine`], returning every observation.
fn drive(h: &mut impl KvEngine, ops: &[FlatOp]) -> Vec<u64> {
    let mut obs = Vec::with_capacity(ops.len());
    for &op in ops {
        obs.push(match op {
            FlatOp::Insert(k, v) => h.insert(k, v) as u64,
            FlatOp::Remove(k) => h.remove(k) as u64,
            FlatOp::Get(k) => match h.get(k) {
                None => u64::MAX,
                Some(v) => v as u64,
            },
            FlatOp::Range(lo, hi) => {
                let got = h.range(lo, hi);
                assert!(
                    got.windows(2).all(|w| w[0].0 < w[1].0),
                    "range must be sorted and unique"
                );
                got.iter()
                    .map(|&(k, v)| k as u64 ^ (v as u64) << 32)
                    .fold(0u64, u64::wrapping_add)
            }
        });
    }
    obs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Flat engine vs `BTreeMap` oracle, both kernels, leaf capacity 4 so a
    /// 160-key band splits and retires leaves constantly.
    #[test]
    fn flat_matches_btree_oracle(ops in proptest::collection::vec(op_strategy(), 0..300)) {
        for kernel in [BallotKernel::Scalar, BallotKernel::Swar] {
            let list = FlatSkiplist::with_leaf_cap(kernel, 4);
            let mut h = list.handle();
            let mut oracle: BTreeMap<u32, u32> = BTreeMap::new();
            for &op in &ops {
                match op {
                    FlatOp::Insert(k, v) => {
                        let added = h.insert(k, v);
                        prop_assert_eq!(added, !oracle.contains_key(&k));
                        oracle.entry(k).or_insert(v);
                    }
                    FlatOp::Remove(k) => {
                        prop_assert_eq!(h.remove(k), oracle.remove(&k).is_some());
                    }
                    FlatOp::Get(k) => {
                        prop_assert_eq!(h.get(k), oracle.get(&k).copied());
                    }
                    FlatOp::Range(lo, hi) => {
                        let want: Vec<(u32, u32)> =
                            oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                        prop_assert_eq!(h.range(lo, hi), want);
                    }
                }
            }
            list.assert_valid();
        }
    }

    /// The two engines behind [`KvEngine`] are observationally identical on
    /// any single-threaded history.
    #[test]
    fn flat_and_gfsl_engines_agree(ops in proptest::collection::vec(op_strategy(), 0..250)) {
        let flat = FlatSkiplist::with_leaf_cap(BallotKernel::Swar, 8);
        let gfsl = Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            pool_chunks: 1 << 12,
            ..Default::default()
        })
        .unwrap();
        let a = drive(&mut flat.handle(), &ops);
        let b = drive(&mut gfsl.handle(), &ops);
        prop_assert_eq!(a, b, "engines diverged behind the KvEngine seam");
        flat.assert_valid();
        gfsl.assert_valid();
    }
}

/// Multi-threaded linearizability soak: a tight keyspace over tiny leaves
/// maximizes leaf-mutex contention, splits, and empty-leaf retirement
/// racing point ops. Every operation is recorded on a shared real-time
/// clock and the merged history must linearize per key.
#[test]
fn flat_engine_linearizability_soak() {
    const THREADS: u64 = 4;
    const OPS: u64 = 600;
    const KEYSPACE: u64 = 48;

    let list = FlatSkiplist::with_leaf_cap(BallotKernel::Swar, 4);
    let clock = HistoryClock::new();

    let histories: Vec<Vec<OpRecord>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let list = &list;
                let clock = &clock;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut rec = Recorder::new(clock);
                    let mut x = (t << 32) | 0x2545_F491 | 1;
                    for i in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = (x % KEYSPACE) as u32 + 1;
                        let inv = rec.invoke();
                        match x % 3 {
                            0 => {
                                let value = (t * OPS + i) as u32;
                                let ok = h.insert(k, value);
                                rec.finish(k, OpAction::Insert { value, ok }, inv);
                            }
                            1 => {
                                let ok = h.remove(k);
                                rec.finish(k, OpAction::Remove { ok }, inv);
                            }
                            _ => {
                                let found = h.get(k);
                                rec.finish(k, OpAction::Get { found }, inv);
                            }
                        }
                    }
                    rec.records
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    let records: Vec<OpRecord> = histories.into_iter().flatten().collect();
    assert_eq!(records.len() as u64, THREADS * OPS);
    if let Err(errors) = check_linearizable(&records, &HashMap::new()) {
        panic!("flat engine produced a non-linearizable history: {errors:?}");
    }
    list.assert_valid();
    let shape = list.shape();
    assert!(shape.splits > 0, "soak must split tiny leaves: {shape:?}");
}
