//! Traversal: `Contains`/`get`, `searchDown`, `searchLateral`, and the
//! path-recording `searchSlow` used by updates (paper §4.2.1–4.2.2).

use gfsl_gpu_mem::MemProbe;
use gfsl_simt::{Ballot, BallotKernel, LaneId, Team};

use crate::chunk::{ops, is_user_key, ChunkView, NIL};
use crate::skiplist::{GfslHandle, FINGER_WALK_BUDGET, HINT_WALK_BUDGET};

/// Team decision for the next traversal step (result of the ballot in
/// `getTidForNextStep`, Algorithm 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextStep {
    /// The searched key is greater than the chunk's max: follow the next
    /// pointer.
    Lateral,
    /// Step down through the pointer held by this DATA lane (the highest
    /// lane whose key is `<= k`).
    Down(LaneId),
    /// Every key in the chunk is greater than `k`: back up to the previous
    /// chunk (`NONE` in the paper).
    Backtrack,
}

/// The cooperative `getTidForNextStep`: DATA lanes vote `key <= k`, the NEXT
/// lane votes `max < k`, the LOCK lane abstains; the highest voting lane
/// wins. EMPTY (∞) keys never vote because `k` is a user key `< ∞`; the
/// `-∞` key always votes.
///
/// The DATA-lane votes are evaluated by `kernel` as one branch-free mask
/// over the chunk's packed words, then the NEXT lane's `max < k` vote is
/// OR-ed in at its lane position. `BallotKernel::Scalar` reproduces the
/// original per-lane closure ballot bit-for-bit (proptested in
/// `gfsl_simt::vector`), so the kernel choice never changes a decision.
#[inline]
pub fn tid_for_next_step(kernel: BallotKernel, team: &Team, k: u32, view: &ChunkView) -> NextStep {
    let data = kernel.keys_le(view.data_words(team), k).bits();
    let next = ((view.max(team) < k) as u32) << team.next_lane();
    match Ballot::from_bits(data | next).highest() {
        None => NextStep::Backtrack,
        Some(lane) if lane == team.next_lane() => NextStep::Lateral,
        Some(lane) => NextStep::Down(lane),
    }
}

/// Bottom-level (and per-level) lateral search decision: DATA lanes vote
/// `key == k`, the NEXT lane votes `max < k` (`isTidWithEqualKey`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LateralStep {
    /// Keep walking right.
    Continue,
    /// Found `k` at this DATA lane.
    Found(LaneId),
    /// Reached the enclosing chunk and `k` is not present.
    NotFound,
}

/// The cooperative `isTidWithEqualKey`: DATA lanes vote `key == k`, the
/// NEXT lane votes `max < k`; the highest voting lane wins. DATA votes are
/// one `kernel` mask, as in [`tid_for_next_step`].
#[inline]
pub fn tid_with_equal_key(kernel: BallotKernel, team: &Team, k: u32, view: &ChunkView) -> LateralStep {
    let data = kernel.keys_eq(view.data_words(team), k).bits();
    let next = ((view.max(team) < k) as u32) << team.next_lane();
    match Ballot::from_bits(data | next).highest() {
        None => LateralStep::NotFound,
        Some(lane) if lane == team.next_lane() => LateralStep::Continue,
        Some(lane) => LateralStep::Found(lane),
    }
}

/// Result of a lateral search: where it ended and what it found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LateralResult {
    /// The enclosing chunk reached (non-zombie).
    pub enclosing: u32,
    /// The DATA lane holding `k` and its value, if present.
    pub found: Option<(LaneId, u32)>,
    /// The enclosing chunk's lock word, when it was observed *unlocked* in
    /// the final view (always on certified `NotFound`; on `Found` only if
    /// no writer happened to hold the chunk). Feeds the traversal hint
    /// cache: a `(chunk, word)` pair can later revalidate the chunk as
    /// unchanged-since-observed via version equality.
    pub word: Option<u64>,
}

impl<'a, P: MemProbe> GfslHandle<'a, P> {
    /// Is `k` in the set? Lock-free (paper §4.2.1).
    pub fn contains(&mut self, k: u32) -> bool {
        self.get(k).is_some()
    }

    /// Look up `k`'s value. Lock-free.
    ///
    /// Returns `None` for reserved keys (`0`, `u32::MAX`) as they can never
    /// be inserted.
    pub fn get(&mut self, k: u32) -> Option<u32> {
        self.stats.contains_ops += 1;
        if !is_user_key(k) {
            return None;
        }
        self.with_pin(|h| {
            let res = h.hinted_lateral(k);
            h.note_hint(res.enclosing, res.word);
            res.found.map(|(_, v)| v)
        })
    }

    /// Bottom-level lateral search for `k`, starting from the traversal
    /// hint when it validates and lies within [`HINT_WALK_BUDGET`] chunks of
    /// the enclosing chunk, else from a full descent.
    ///
    /// The hot case — `k` lands in the hinted chunk itself — is answered
    /// from [`hint_start`](Self::hint_start)'s validated snapshot without
    /// another chunk read: the validation bracket doubles as the negative-
    /// answer certification, so both `Found` and `NotFound` are immediate.
    pub(crate) fn hinted_lateral(&mut self, k: u32) -> LateralResult {
        if let Some((c, view)) = self.hint_start(k) {
            let team = self.list.team;
            let kernel = self.list.params.kernel;
            // Foresight: under key-sorted dispatch the stream moves right,
            // so the hinted chunk's successor is the likely next touch —
            // warm it while the ballot decides.
            self.prefetch_chunk(view.next(&team));
            match tid_with_equal_key(kernel, &team, k, &view) {
                LateralStep::Found(lane) => {
                    // The validated word is unlocked by construction.
                    return LateralResult {
                        enclosing: c,
                        found: Some((lane, view.entry(lane).val())),
                        word: Some(view.lock_word(&team)),
                    };
                }
                LateralStep::NotFound => {
                    return LateralResult {
                        enclosing: c,
                        found: None,
                        word: Some(view.lock_word(&team)),
                    };
                }
                LateralStep::Continue => {
                    let next = view.next(&team);
                    debug_assert_ne!(next, NIL);
                    if let Some(res) = self.search_lateral_bounded(k, next, HINT_WALK_BUDGET) {
                        return res;
                    }
                    // Validated but too far left to be worth walking from.
                    self.hint_overrun();
                }
            }
        }
        let bottom = self.search_down(k);
        self.search_lateral(k, bottom)
    }

    /// The smallest key currently in the set (with its value), or `None`
    /// when empty. Lock-free, like `contains`: walks the bottom level from
    /// the head until the first live key.
    ///
    /// This is the primitive skiplist-based priority queues are built on
    /// (the paper cites Shavit & Lotan's skiplist priority queue as a
    /// motivating application).
    pub fn min_entry(&mut self) -> Option<(u32, u32)> {
        let team = self.list.team;
        let kernel = self.list.params.kernel;
        self.stats.contains_ops += 1;
        self.with_pin(|h| {
            let mut cur = h.list.head_of(0);
            loop {
                // Certified: claiming a minimum asserts the absence of
                // smaller keys in the view, which a torn read racing a
                // remove can fake.
                let (_, view) = h.next_live_certified(cur)?;
                // First live key above -inf; data arrays are sorted with
                // empties at the end, and the -inf sentinel can only sit in
                // entry 0, so the lowest voting lane is the minimum.
                if let Some(lane) = kernel.keys_live(view.data_words(&team)).lowest() {
                    let e = view.entry(lane);
                    return Some((e.key(), e.val()));
                }
                let next = view.next(&team);
                if next == NIL {
                    return None;
                }
                cur = next;
            }
        })
    }

    /// Traverse the upper levels and return the level-0 chunk reached by the
    /// final down-step (Algorithm 4.2). Restarts from the top in the rare
    /// backtrack-with-no-previous case.
    pub(crate) fn search_down(&mut self, k: u32) -> u32 {
        self.descend(k, None)
    }

    /// The one descent loop behind `search_down` and `search_slow` (the
    /// read and update paths previously hand-rolled it separately).
    ///
    /// * `path = None` — read-only: zombies met at the top of a level are
    ///   stepped through without taking any lock, preserving `contains`'s
    ///   lock-freedom.
    /// * `path = Some` — update path: per-level `path[i]` is recorded
    ///   (levels the descent never visits are filled with the level heads
    ///   on entry and on every restart) and zombie runs are lazily
    ///   unlinked via try-lock redirection.
    ///
    /// With [`GfslParams::fingers`] on, the descent first tries to restart
    /// from the deepest still-valid cached finger level instead of the
    /// head ([`Self::finger_restart`]), and re-caches every chunk it steps
    /// down through whose lock word was observed unlocked. An in-descent
    /// restart (torn backtrack) always returns to the head: the finger that
    /// got us here may be what went stale.
    pub(crate) fn descend(
        &mut self,
        k: u32,
        mut path: Option<&mut [u32; gfsl_simt::WARP_SIZE]>,
    ) -> u32 {
        let team = self.list.team;
        let kernel = self.list.params.kernel;
        let mut from_finger = if self.list.params.fingers {
            self.finger_restart(k)
        } else {
            None
        };
        // Lateral steps remaining before a finger-started descent gives up
        // and falls back to the head. Validation only proves the finger is
        // *at-or-left* of `k` on its level, not near it: when the access
        // pattern jumps (a batch moves to a new hot band), a deep finger
        // can sit thousands of chunks left of `k`, and crawling a low level
        // across the keyspace costs far more than the head's O(log n)
        // strides ever save. The budget caps the damage at less than one
        // head descent's worth of reads.
        let mut finger_laterals = FINGER_WALK_BUDGET;
        'restart: loop {
            if let Some(p) = path.as_deref_mut() {
                for (i, slot) in p.iter_mut().enumerate().take(self.list.params.max_levels()) {
                    *slot = self.list.head_of(i);
                }
            }
            // prev = the chunk we lateral-stepped from (pointer + snapshot).
            let mut prev: Option<(u32, ChunkView)> = None;
            // The finger restart hands over its validating view so the
            // first step pays no second read.
            let mut pending: Option<ChunkView> = None;
            // Level this descent attempt restarted from, while its lateral
            // budget still applies (None once descending from the head).
            let mut fingered_level: Option<usize> = None;
            let (mut height, mut cur) = match from_finger.take() {
                Some((level, chunk, view)) => {
                    pending = Some(view);
                    fingered_level = Some(level);
                    (level, chunk)
                }
                None => {
                    let h = self.list.height();
                    (h, self.list.head_of(h))
                }
            };
            while height > 0 {
                let mut view = match pending.take() {
                    Some(v) => v,
                    None => self.read_chunk(cur),
                };
                if view.is_zombie(&team) {
                    if path.is_some() {
                        // Update path: lazily unlink the zombie run.
                        let (nz, nz_view) = match self.first_non_zombie(view) {
                            Some(x) => x,
                            None => {
                                self.stats.search_restarts += 1;
                                continue 'restart;
                            }
                        };
                        match prev {
                            Some((pptr, _)) => self.redirect_past_zombies(pptr, cur, nz, height),
                            None => {
                                if self.list.head_of(height) == cur {
                                    self.update_head(height, cur, nz);
                                }
                            }
                        }
                        cur = nz;
                        view = nz_view;
                    } else {
                        // Read path: zombies keep pointing at the chunk that
                        // absorbed their keys; just step through, lock-free.
                        let next = view.next(&team);
                        if next == NIL {
                            // Defensive: the last chunk is never zombified,
                            // so this indicates we raced something unusual.
                            self.stats.search_restarts += 1;
                            continue 'restart;
                        }
                        if let Some(level) = fingered_level {
                            if finger_laterals == 0 {
                                self.finger_overrun(level);
                                continue 'restart;
                            }
                            finger_laterals -= 1;
                        }
                        cur = next;
                        continue;
                    }
                }
                match tid_for_next_step(kernel, &team, k, &view) {
                    NextStep::Lateral => {
                        if let Some(level) = fingered_level {
                            if finger_laterals == 0 {
                                self.finger_overrun(level);
                                continue 'restart;
                            }
                            finger_laterals -= 1;
                        }
                        prev = Some((cur, view));
                        cur = view.next(&team);
                    }
                    NextStep::Down(lane) => {
                        if let Some(p) = path.as_deref_mut() {
                            p[height] = cur;
                        }
                        let word = view.lock_word(&team);
                        self.note_finger(
                            height,
                            cur,
                            (crate::chunk::lock_state(word) == crate::chunk::LOCK_UNLOCKED)
                                .then_some(word),
                        );
                        height -= 1;
                        prev = None;
                        cur = view.entry(lane).val();
                    }
                    NextStep::Backtrack => match prev.take() {
                        None => {
                            // The key we stepped down through was deleted
                            // concurrently; not enough context to back up.
                            self.stats.search_restarts += 1;
                            continue 'restart;
                        }
                        Some((pptr, pview)) => {
                            if let Some(p) = path.as_deref_mut() {
                                p[height] = pptr;
                            }
                            let word = pview.lock_word(&team);
                            self.note_finger(
                                height,
                                pptr,
                                (crate::chunk::lock_state(word) == crate::chunk::LOCK_UNLOCKED)
                                    .then_some(word),
                            );
                            height -= 1;
                            cur = match down_step_lane(kernel, &team, k, &pview) {
                                Some(lane) => pview.entry(lane).val(),
                                None => {
                                    self.stats.search_restarts += 1;
                                    continue 'restart;
                                }
                            };
                        }
                    },
                }
            }
            return cur;
        }
    }

    /// Walk right along one level until `k`'s enclosing chunk, skipping
    /// zombies (Algorithm 4.4).
    ///
    /// A `NotFound` answer is only returned once *certified*: the chunk is
    /// re-read until two consecutive views carry the same unlocked lock
    /// word. The team reads lanes in ascending order while `executeRemove`
    /// shifts entries toward lower lanes, so a single view can miss a key
    /// that hopped over the read cursor — but every entry move happens under
    /// the chunk lock, and each release bumps the lock word's version, so
    /// equal unlocked lock words bracketing a view prove no entry moved
    /// while it was read. `Found` needs no certification (an entry is one
    /// atomic word), and `Continue` follows a `(max, next)` pair written
    /// atomically; keys never migrate to an earlier chunk, so a passed
    /// chunk can never hide `k`.
    pub(crate) fn search_lateral(&mut self, k: u32, start: u32) -> LateralResult {
        self.search_lateral_bounded(k, start, u32::MAX)
            .expect("unbounded lateral search always reaches the enclosing chunk")
    }

    /// [`Self::search_lateral`] with a chunk-move budget: returns `None`
    /// once the walk has stepped `budget` chunks without reaching `k`'s
    /// enclosing chunk.
    ///
    /// This is what makes the traversal hint cache safe to consult on
    /// arbitrary key streams: a validated hint only proves the enclosing
    /// chunk is *at-or-right* of the cached one, at an unknown distance. A
    /// clustered stream lands within a step or two; a stream that jumps far
    /// right would otherwise degrade the O(log n) descent into an O(n)
    /// bottom-level crawl. Capping the walk bounds the worst case at
    /// `budget` extra chunk reads before falling back to the descent.
    pub(crate) fn search_lateral_bounded(
        &mut self,
        k: u32,
        start: u32,
        budget: u32,
    ) -> Option<LateralResult> {
        let team = self.list.team;
        let kernel = self.list.params.kernel;
        let skim = self.list.params.fingers;
        let mut cur = start;
        let mut moves = 0u32;
        // Lock word observed before the current view's data lanes (i.e. from
        // the previous read of the *same* chunk). Reset on every move.
        let mut certify: Option<u64> = None;
        loop {
            if skim && moves >= 2 {
                // Max-skip: while laterally far from `k`, read only the
                // `(max, next)` word instead of the whole chunk. `max < k`
                // decides `Continue` exactly — every data key is `<= max`,
                // so no passed chunk can hold `k`, zombie or not (a zombie
                // with `max < k` is stepped through identically, and one
                // with `max >= k` falls to the full read below, which
                // discovers it).
                //
                // Engaged only once two full reads have already stepped:
                // a word probed for a chunk the full read then re-reads is
                // pure overhead on the 1–2 step walks that dominate hinted
                // hot-band traffic, while the runs that matter (zombie
                // chains at a churn window's trailing edge) are dozens of
                // chunks long and amortize the two-step on-ramp.
                loop {
                    let nf = ops::read_next_field(
                        &team,
                        &self.list.pool,
                        &mut self.probe,
                        self.list.chunk(cur),
                    );
                    if nf.key() >= k {
                        break;
                    }
                    let next = nf.val();
                    debug_assert_ne!(next, NIL, "max < k implies a successor");
                    self.stats.skip_reads += 1;
                    self.prefetch_chunk(next);
                    cur = next;
                    certify = None;
                    moves += 1;
                    if moves > budget {
                        return None;
                    }
                }
            }
            // Pre-bracket: observe the lock word before the team read. If
            // the view's own lock lane (read after every data lane) repeats
            // it unlocked, the view is *certified on first read* — a
            // `NotFound` answer returns without the confirming re-read the
            // certify loop below would otherwise pay, and a `Found` view is
            // eligible for the fat-hint stash. One extra word read per
            // chunk arrival buys back a whole team read on the (common)
            // quiescent-chunk case.
            if certify.is_none() {
                let addr = ops::lock_addr(&team, self.list.chunk(cur));
                self.probe.lane_read(addr);
                certify = Some(self.list.pool.read(addr));
            }
            let view = self.read_chunk(cur);
            // Foresight: the successor is the likely next read — either
            // this walk continues, or (under key-sorted batch dispatch)
            // the handle's next operation lands there.
            self.prefetch_chunk(view.next(&team));
            if view.is_zombie(&team) {
                cur = view.next(&team);
                certify = None;
                debug_assert_ne!(cur, NIL);
                moves += 1;
                if moves > budget {
                    return None;
                }
                continue;
            }
            match tid_with_equal_key(kernel, &team, k, &view) {
                LateralStep::Continue => {
                    cur = view.next(&team);
                    certify = None;
                    moves += 1;
                    if moves > budget {
                        return None;
                    }
                }
                LateralStep::Found(lane) => {
                    let word = view.lock_word(&team);
                    if certify == Some(word)
                        && crate::chunk::lock_state(word) == crate::chunk::LOCK_UNLOCKED
                    {
                        // Pre-bracketed: certified despite needing no
                        // confirmation for the answer itself.
                        self.stash_hint_view(cur, &view);
                    }
                    return Some(LateralResult {
                        enclosing: cur,
                        found: Some((lane, view.entry(lane).val())),
                        word: (crate::chunk::lock_state(word) == crate::chunk::LOCK_UNLOCKED)
                            .then_some(word),
                    });
                }
                LateralStep::NotFound => {
                    if crate::bug_knobs::revert_remove_shift() {
                        // Seed-era reader: trust the single team read with
                        // no lock-word bracketing. Combined with the
                        // reverted right-to-left shift this re-opens the
                        // PR 1 torn-read race for the model-check oracle.
                        return Some(LateralResult {
                            enclosing: cur,
                            found: None,
                            word: None,
                        });
                    }
                    // The lock lane is read after every data lane of `view`.
                    let after = view.lock_word(&team);
                    if certify == Some(after)
                        && crate::chunk::lock_state(after) == crate::chunk::LOCK_UNLOCKED
                    {
                        // Bracketed by the previous read's lock lane and this
                        // view's own: certified, so eligible as the fat hint.
                        self.stash_hint_view(cur, &view);
                        return Some(LateralResult {
                            enclosing: cur,
                            found: None,
                            word: Some(after),
                        });
                    }
                    if certify.is_some() {
                        // A writer was active during the read: genuine retry.
                        self.certify_poison_check(cur);
                    }
                    certify = Some(after);
                }
            }
        }
    }

    /// The update-path search (`searchSlow`, Algorithm 4.6): same traversal
    /// as `search_down` + bottom lateral, but records the per-level path and
    /// lazily unlinks zombies it meets after lateral steps.
    ///
    /// `path[i]` = chunk in level `i` at-or-left of `k`'s enclosing chunk;
    /// levels the traversal never visited default to the level head.
    pub(crate) fn search_slow(&mut self, k: u32) -> (LateralResult, [u32; gfsl_simt::WARP_SIZE]) {
        let mut path = [NIL; gfsl_simt::WARP_SIZE];
        let bottom = self.descend(k, Some(&mut path));
        let res = self.search_lateral_redirect(k, bottom);
        path[0] = res.enclosing;
        (res, path)
    }

    /// Like [`Self::search_lateral`] but lazily unlinks zombie runs it walks
    /// through (the bottom-level half of `findLateralWithZombieRedirect`).
    pub(crate) fn search_lateral_redirect(&mut self, k: u32, start: u32) -> LateralResult {
        let team = self.list.team;
        let kernel = self.list.params.kernel;
        let mut prev: Option<u32> = None;
        let mut cur = start;
        // NotFound certification, exactly as in `search_lateral`.
        let mut certify: Option<u64> = None;
        loop {
            // Pre-bracket, as in `search_lateral_bounded`: certify views on
            // first read so the common quiescent case (every fresh insert's
            // final `NotFound`) skips the confirming re-read.
            if certify.is_none() {
                let addr = ops::lock_addr(&team, self.list.chunk(cur));
                self.probe.lane_read(addr);
                certify = Some(self.list.pool.read(addr));
            }
            let view = self.read_chunk(cur);
            if view.is_zombie(&team) {
                certify = None;
                match self.first_non_zombie(view) {
                    Some((nz, _)) => {
                        if let Some(p) = prev {
                            self.redirect_past_zombies(p, cur, nz, 0);
                        }
                        cur = nz;
                        continue;
                    }
                    None => {
                        // Torn race; fall back to the plain walk which will
                        // simply keep stepping.
                        cur = view.next(&team);
                        debug_assert_ne!(cur, NIL);
                        continue;
                    }
                }
            }
            match tid_with_equal_key(kernel, &team, k, &view) {
                LateralStep::Continue => {
                    prev = Some(cur);
                    cur = view.next(&team);
                    certify = None;
                }
                LateralStep::Found(lane) => {
                    let word = view.lock_word(&team);
                    if certify == Some(word)
                        && crate::chunk::lock_state(word) == crate::chunk::LOCK_UNLOCKED
                    {
                        self.stash_hint_view(cur, &view);
                    }
                    return LateralResult {
                        enclosing: cur,
                        found: Some((lane, view.entry(lane).val())),
                        word: (crate::chunk::lock_state(word) == crate::chunk::LOCK_UNLOCKED)
                            .then_some(word),
                    };
                }
                LateralStep::NotFound => {
                    if crate::bug_knobs::revert_remove_shift() {
                        // Seed-era uncertified reader; see
                        // `search_lateral_bounded`.
                        return LateralResult {
                            enclosing: cur,
                            found: None,
                            word: None,
                        };
                    }
                    let after = view.lock_word(&team);
                    if certify == Some(after)
                        && crate::chunk::lock_state(after) == crate::chunk::LOCK_UNLOCKED
                    {
                        self.stash_hint_view(cur, &view);
                        return LateralResult {
                            enclosing: cur,
                            found: None,
                            word: Some(after),
                        };
                    }
                    if certify.is_some() {
                        self.certify_poison_check(cur);
                    }
                    certify = Some(after);
                }
            }
        }
    }

    /// Follow next pointers from a zombie's snapshot until a non-zombie
    /// chunk. Returns `None` only on a torn race (caller restarts).
    pub(crate) fn first_non_zombie(&mut self, zombie_view: ChunkView) -> Option<(u32, ChunkView)> {
        let team = self.list.team;
        let mut cur = zombie_view.next(&team);
        loop {
            if cur == NIL {
                return None;
            }
            let view = self.read_chunk(cur);
            if view.is_zombie(&team) {
                cur = view.next(&team);
            } else {
                return Some((cur, view));
            }
        }
    }

    /// Lazily rewrite `prev`'s next pointer to skip a zombie run:
    /// best-effort try-lock, re-verify, single-word write (paper §4.2.2:
    /// "the redirection is performed lazily by calling try-lock on the
    /// previous chunk; if the lock fails the team continues").
    ///
    /// A successful swing is the moment the skipped zombies become
    /// unreachable from the live chain, and the re-verified lock on `prev`
    /// makes this team the *unique* unlinker of exactly this run — so this
    /// is where the run is retired to the epoch reclaimer.
    pub(crate) fn redirect_past_zombies(&mut self, prev: u32, old_next: u32, new_next: u32, level: usize) {
        let team = self.list.team;
        let pool = &self.list.pool;
        let pch = self.list.chunk(prev);
        if !ops::try_lock(&team, pool, &mut self.probe, pch) {
            return;
        }
        self.stats.locks_taken += 1;
        self.held.acquired(prev);
        // Under the lock, prev cannot be zombified or split concurrently.
        let nf = ops::read_next_field(&team, &self.list.pool, &mut self.probe, pch);
        if nf.val() == old_next {
            ops::write_next_field(
                &team,
                &self.list.pool,
                &mut self.probe,
                pch,
                nf.key(),
                new_next,
            );
            self.stats.zombie_unlinks += 1;
            self.retire_run(old_next, new_next, level);
        }
        self.unlock(prev);
    }

    /// CAS the head-array pointer of `level` from a zombified first chunk to
    /// its replacement. CAS success makes this team the unique unlinker of
    /// the skipped run (see [`Self::retire_run`]).
    pub(crate) fn update_head(&mut self, level: usize, old: u32, new: u32) {
        use std::sync::atomic::Ordering;
        // Mvcc: record the pre-swing head *before* the CAS so a versioned
        // reader's raw head read racing the swing is always caught by its
        // chain re-check (a push for a CAS that then fails is harmless —
        // the recorded head is the current head). Level 0 only: versioned
        // walks never consult the upper index levels.
        if level == 0 {
            if let Some(mvcc) = self.list.mvcc.as_deref() {
                mvcc.note_head0(old, self.held.stamp);
            }
        }
        if self.list.head[level]
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.stats.zombie_unlinks += 1;
            self.retire_run(old, new, level);
        }
    }
}

/// The down-step lane within a backtracked-to chunk: highest DATA lane with
/// `key <= k` (`getTidOfDownStep`). The previous chunk was lateral-stepped
/// from, so its max (hence every key) is `< k`; a candidate always exists
/// unless a racing merge emptied it, in which case the caller restarts.
#[inline]
pub(crate) fn down_step_lane(
    kernel: BallotKernel,
    team: &Team,
    k: u32,
    view: &ChunkView,
) -> Option<LaneId> {
    kernel.keys_le(view.data_words(team), k).highest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{Entry, KEY_INF, KEY_NEG_INF, LOCK_UNLOCKED, LOCK_ZOMBIE};
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    /// Hand-build a chunk inside a list's pool for decision-logic tests.
    fn raw_chunk(list: &Gfsl, entries: &[(u32, u32)], max: u32, next: u32, lock: u64) -> u32 {
        let mut h = list.handle();
        let idx = h.alloc_chunk().unwrap();
        let team = &list.team;
        let ch = list.chunk(idx);
        for (i, &(k, v)) in entries.iter().enumerate() {
            list.pool.write(ch.entry_addr(i), Entry::new(k, v).0);
        }
        list.pool
            .write(ch.entry_addr(team.next_lane()), Entry::new(max, next).0);
        list.pool.write(ch.entry_addr(team.lock_lane()), lock);
        idx
    }

    fn small_list() -> Gfsl {
        Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn next_step_down_on_largest_le_key() {
        let list = small_list();
        let idx = raw_chunk(&list, &[(KEY_NEG_INF, 0), (10, 1), (20, 2)], 20, NIL, LOCK_UNLOCKED);
        let mut h = list.handle();
        let v = h.read_chunk(idx);
        assert_eq!(tid_for_next_step(BallotKernel::Swar, &list.team, 15, &v), NextStep::Down(1));
        assert_eq!(tid_for_next_step(BallotKernel::Swar, &list.team, 10, &v), NextStep::Down(1));
        assert_eq!(tid_for_next_step(BallotKernel::Swar, &list.team, 9, &v), NextStep::Down(0));
        assert_eq!(tid_for_next_step(BallotKernel::Swar, &list.team, 20, &v), NextStep::Down(2));
    }

    #[test]
    fn next_step_lateral_when_k_beyond_max() {
        let list = small_list();
        let idx = raw_chunk(&list, &[(10, 1), (20, 2)], 20, 99, LOCK_UNLOCKED);
        let mut h = list.handle();
        let v = h.read_chunk(idx);
        assert_eq!(tid_for_next_step(BallotKernel::Swar, &list.team, 21, &v), NextStep::Lateral);
        // k == max: NOT lateral (strict <), down through lane 1 instead.
        assert_eq!(tid_for_next_step(BallotKernel::Swar, &list.team, 20, &v), NextStep::Down(1));
    }

    #[test]
    fn next_step_backtrack_when_all_keys_greater() {
        let list = small_list();
        let idx = raw_chunk(&list, &[(30, 1), (40, 2)], 40, NIL, LOCK_UNLOCKED);
        let mut h = list.handle();
        let v = h.read_chunk(idx);
        assert_eq!(tid_for_next_step(BallotKernel::Swar, &list.team, 25, &v), NextStep::Backtrack);
    }

    #[test]
    fn equal_key_lateral_decisions() {
        let list = small_list();
        let idx = raw_chunk(&list, &[(10, 7), (20, 8)], 20, 42, LOCK_UNLOCKED);
        let mut h = list.handle();
        let v = h.read_chunk(idx);
        assert_eq!(tid_with_equal_key(BallotKernel::Swar, &list.team, 10, &v), LateralStep::Found(0));
        assert_eq!(tid_with_equal_key(BallotKernel::Swar, &list.team, 20, &v), LateralStep::Found(1));
        assert_eq!(tid_with_equal_key(BallotKernel::Swar, &list.team, 15, &v), LateralStep::NotFound);
        assert_eq!(tid_with_equal_key(BallotKernel::Swar, &list.team, 25, &v), LateralStep::Continue);
    }

    #[test]
    fn empty_entries_never_vote() {
        let list = small_list();
        // Chunk with one key, lots of EMPTY tails; k bigger than the key but
        // smaller than max must go Down via the key, not via an EMPTY lane.
        let idx = raw_chunk(&list, &[(10, 1)], KEY_INF, NIL, LOCK_UNLOCKED);
        let mut h = list.handle();
        let v = h.read_chunk(idx);
        assert_eq!(tid_for_next_step(BallotKernel::Swar, &list.team, 1000, &v), NextStep::Down(0));
    }

    #[test]
    fn search_on_empty_list_finds_nothing() {
        let list = small_list();
        let mut h = list.handle();
        assert!(!h.contains(5));
        assert_eq!(h.get(5), None);
        assert_eq!(h.stats().contains_ops, 2);
    }

    #[test]
    fn reserved_keys_are_never_contained() {
        let list = small_list();
        let mut h = list.handle();
        assert!(!h.contains(KEY_NEG_INF));
        assert!(!h.contains(KEY_INF));
    }

    #[test]
    fn search_lateral_walks_chain_and_skips_zombies() {
        let list = small_list();
        // chain: A(10,20) -> Z(zombie) -> B(30,40)
        let b = raw_chunk(&list, &[(30, 3), (40, 4)], KEY_INF, NIL, LOCK_UNLOCKED);
        let z = raw_chunk(&list, &[(21, 9)], 25, b, LOCK_ZOMBIE);
        let a = raw_chunk(&list, &[(10, 1), (20, 2)], 20, z, LOCK_UNLOCKED);
        let mut h = list.handle();
        let r = h.search_lateral(40, a);
        assert_eq!(r.enclosing, b);
        assert_eq!(r.found, Some((1, 4)));
        let r = h.search_lateral(25, a);
        assert_eq!(r.enclosing, b, "zombie contents ignored");
        assert_eq!(r.found, None);
        let r = h.search_lateral(10, a);
        assert_eq!(r.found, Some((0, 1)));
    }

    #[test]
    fn search_slow_path_defaults_to_heads() {
        let list = small_list();
        let mut h = list.handle();
        let (res, path) = h.search_slow(123);
        assert_eq!(res.found, None);
        assert_eq!(path[0], list.head_of(0));
        for (lvl, &p) in path.iter().enumerate().take(list.params.max_levels()).skip(1) {
            assert_eq!(p, list.head_of(lvl));
        }
    }
}
