//! Delta-debugging (ddmin) of failing decision byte lists.
//!
//! A counterexample straight out of the DFS or a random walk carries every
//! decision its episode made — typically hundreds of bytes, almost all of
//! which are the default choice and irrelevant to the failure. Zeller's
//! ddmin shrinks the list to a locally minimal failing subset: remove a
//! chunk, replay the remainder (missing decisions fall back to the
//! deterministic default policy, which is exactly why removal is
//! meaningful), keep the removal if the episode still fails.
//!
//! The result is *1-minimal with respect to chunk removal*, not globally
//! minimal — standard for delta debugging and plenty for a readable
//! one-line repro.

/// Minimize `bytes` against `still_fails` (which must be deterministic:
/// it replays one episode from a candidate byte list and reports whether
/// the failure reproduces). `still_fails(&bytes)` is assumed true on
/// entry. Returns the minimized list and the number of replay episodes
/// spent.
pub fn ddmin(bytes: &[u8], mut still_fails: impl FnMut(&[u8]) -> bool) -> (Vec<u8>, u64) {
    let mut cur: Vec<u8> = bytes.to_vec();
    let mut tests = 0u64;
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            // Complement: everything except cur[start..end].
            let candidate: Vec<u8> = cur[..start]
                .iter()
                .chain(&cur[end..])
                .copied()
                .collect();
            tests += 1;
            if still_fails(&candidate) {
                cur = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    // Final polish: try dropping single trailing defaults (cheap, common).
    while let Some((&_last, rest)) = cur.split_last() {
        tests += 1;
        if still_fails(rest) {
            cur = rest.to_vec();
        } else {
            break;
        }
    }
    (cur, tests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_relevant_bytes() {
        // Failure iff the list contains a 7 somewhere and a 9 after it.
        let fails = |b: &[u8]| {
            b.iter()
                .position(|&x| x == 7)
                .is_some_and(|i| b[i..].contains(&9))
        };
        let noisy: Vec<u8> = (0..200u8).map(|i| i % 5).chain([7, 1, 1, 9, 2]).collect();
        assert!(fails(&noisy));
        let (min, _tests) = ddmin(&noisy, |b| fails(b));
        assert!(fails(&min), "minimized list must still fail");
        assert_eq!(min, vec![7, 9], "only the two relevant bytes survive");
    }

    #[test]
    fn already_minimal_is_stable() {
        let fails = |b: &[u8]| b == [1, 2];
        let (min, _) = ddmin(&[1, 2], fails);
        assert_eq!(min, vec![1, 2]);
    }

    #[test]
    fn single_byte_input() {
        let fails = |b: &[u8]| b.contains(&3);
        let (min, _) = ddmin(&[3], fails);
        assert_eq!(min, vec![3]);
    }

    #[test]
    fn empty_failure_shrinks_to_empty() {
        // Failure independent of the decisions (e.g. a bug on the default
        // schedule): everything is removable.
        let (min, _) = ddmin(&[4, 4, 4, 4], |_| true);
        assert!(min.is_empty());
    }
}
