//! Divergence and lockstep-step accounting.
//!
//! The GPU cost model charges a warp for every lockstep step it executes and
//! for every divergent branch it serializes. GFSL teams execute essentially
//! divergence-free (all lanes take the same traversal steps; the only
//! tId-specific work is which entry a lane writes). The M&C baseline, with one
//! independent operation per lane, diverges heavily: a warp must execute the
//! union of all lanes' paths, so its step count is the *maximum* lane path
//! length per reconvergence region rather than the mean.
//!
//! These counters are plain `u64`s owned by a single worker thread and merged
//! at the end of a run; they are deliberately not atomic to keep the
//! instrumented fast path cheap.

/// Per-worker divergence/step counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DivergenceStats {
    /// Lockstep steps executed by teams/warps (one per warp-wide instruction
    /// region, e.g. one chunk-read-and-decide round in GFSL).
    pub warp_steps: u64,
    /// Steps that would have been executed by a lane running alone; for a
    /// divergence-free team this equals `warp_steps`.
    pub lane_steps: u64,
    /// Number of branch points at which at least two lanes of a warp took
    /// different directions (each costs one serialized re-execution).
    pub divergent_branches: u64,
}

impl DivergenceStats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a warp-wide lockstep step (GFSL team step: all lanes converged).
    #[inline]
    pub fn record_converged_step(&mut self) {
        self.warp_steps += 1;
        self.lane_steps += 1;
    }

    /// Record one reconvergence region of a warp whose lanes needed
    /// `lane_step_counts` individual steps (M&C model: the warp executes
    /// `max` steps, lanes would individually have executed `sum / lanes`).
    #[inline]
    pub fn record_diverged_region(&mut self, lane_step_counts: &[u64]) {
        let max = lane_step_counts.iter().copied().max().unwrap_or(0);
        let sum: u64 = lane_step_counts.iter().sum();
        self.warp_steps += max;
        self.lane_steps += sum;
        if lane_step_counts.iter().any(|&c| c != max) {
            self.divergent_branches += 1;
        }
    }

    /// SIMD efficiency: mean lane utilization in `0..=1`. A divergence-free
    /// warp scores 1.0.
    pub fn efficiency(&self, lanes_per_warp: u64) -> f64 {
        if self.warp_steps == 0 {
            return 1.0;
        }
        let issued = self.warp_steps * lanes_per_warp;
        (self.lane_steps as f64 / issued as f64).min(1.0)
    }

    /// Merge another worker's counters into this one.
    pub fn merge(&mut self, other: &DivergenceStats) {
        self.warp_steps += other.warp_steps;
        self.lane_steps += other.lane_steps;
        self.divergent_branches += other.divergent_branches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converged_steps_are_fully_efficient() {
        let mut d = DivergenceStats::new();
        for _ in 0..10 {
            d.record_converged_step();
        }
        assert_eq!(d.warp_steps, 10);
        assert_eq!(d.lane_steps, 10);
        assert_eq!(d.divergent_branches, 0);
        assert!((d.efficiency(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diverged_region_charges_max_and_counts_branch() {
        let mut d = DivergenceStats::new();
        d.record_diverged_region(&[3, 7, 5, 7]);
        assert_eq!(d.warp_steps, 7);
        assert_eq!(d.lane_steps, 22);
        assert_eq!(d.divergent_branches, 1);
    }

    #[test]
    fn uniform_region_is_not_divergent() {
        let mut d = DivergenceStats::new();
        d.record_diverged_region(&[4, 4, 4]);
        assert_eq!(d.warp_steps, 4);
        assert_eq!(d.lane_steps, 12);
        assert_eq!(d.divergent_branches, 0);
    }

    #[test]
    fn efficiency_of_diverged_warp() {
        let mut d = DivergenceStats::new();
        // 32-lane warp: one lane needs 8 steps, the rest need 2.
        let mut counts = vec![2u64; 31];
        counts.push(8);
        d.record_diverged_region(&counts);
        // warp executed 8 steps * 32 lanes = 256 issue slots, 70 useful.
        let eff = d.efficiency(32);
        assert!((eff - 70.0 / 256.0).abs() < 1e-12, "eff = {eff}");
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = DivergenceStats::new();
        a.record_converged_step();
        let mut b = DivergenceStats::new();
        b.record_diverged_region(&[1, 2]);
        a.merge(&b);
        assert_eq!(a.warp_steps, 3);
        assert_eq!(a.lane_steps, 4);
        assert_eq!(a.divergent_branches, 1);
    }

    #[test]
    fn empty_region_is_noop() {
        let mut d = DivergenceStats::new();
        d.record_diverged_region(&[]);
        assert_eq!(d, DivergenceStats::new());
    }
}
