//! Request/response types and per-client completion routing.

use gfsl::batch::{BatchOp, BatchReply};
use gfsl::Error as GfslError;
use gfsl_workload::ServeOp;

/// Client identifier (index into the simulated client population).
pub type ClientId = u32;

/// One admitted request, tagged with its issuer and virtual arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Issuing client.
    pub client: ClientId,
    /// Service-unique request id (assigned at issue, monotone per run).
    pub id: u64,
    /// Virtual arrival time, nanoseconds since the run started.
    pub arrival_ns: u64,
    /// The operation.
    pub op: ServeOp,
}

/// Typed reply to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reply {
    /// `Get`: the value, if present.
    Got(Option<u32>),
    /// `Insert`: whether a new key was added.
    Inserted(bool),
    /// `Delete`: whether the key was found and removed.
    Deleted(bool),
    /// `Range`: number of keys in the window.
    Ranged(u32),
    /// `MinEntry`: the smallest present entry, if any.
    MinIs(Option<(u32, u32)>),
    /// `PopMin`: the extracted entry, or `None` on an empty structure.
    Popped(Option<(u32, u32)>),
    /// The operation failed structurally (reserved key, pool exhausted).
    Failed(GfslError),
}

impl From<BatchReply> for Reply {
    fn from(r: BatchReply) -> Reply {
        match r {
            BatchReply::Got(v) => Reply::Got(v),
            BatchReply::Inserted(b) => Reply::Inserted(b),
            BatchReply::Removed(b) => Reply::Deleted(b),
            BatchReply::Counted(n) => Reply::Ranged(n),
            BatchReply::MinIs(kv) => Reply::MinIs(kv),
            BatchReply::Popped(kv) => Reply::Popped(kv),
            BatchReply::Failed(e) => Reply::Failed(e),
        }
    }
}

/// Map a serving op onto the structure's batched entry point.
pub fn to_batch_op(op: ServeOp) -> BatchOp {
    match op {
        ServeOp::Get(k) => BatchOp::Get(k),
        ServeOp::Insert(k, v) => BatchOp::Insert(k, v),
        ServeOp::Delete(k) => BatchOp::Remove(k),
        ServeOp::Range(lo, hi) => BatchOp::CountRange(lo, hi),
        ServeOp::MinEntry => BatchOp::MinEntry,
        ServeOp::PopMin => BatchOp::PopMin,
    }
}

/// A completed request routed back to its client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Issuing client.
    pub client: ClientId,
    /// The request's service-unique id.
    pub id: u64,
    /// Virtual arrival time of the request.
    pub arrival_ns: u64,
    /// Virtual time spent queued before dispatch (batch-formation wait).
    pub wait_ns: u64,
    /// Virtual completion time.
    pub done_ns: u64,
    /// The typed reply.
    pub reply: Reply,
}

impl Response {
    /// End-to-end latency: completion minus arrival.
    #[inline]
    pub fn latency_ns(&self) -> u64 {
        self.done_ns.saturating_sub(self.arrival_ns)
    }
}

/// Per-client FIFO completion queues: batch execution completes out of
/// arrival order (batches run concurrently), so responses are routed here
/// and each client consumes *its* stream in issue order.
#[derive(Debug, Default)]
pub struct ClientQueues {
    queues: Vec<std::collections::VecDeque<Response>>,
}

impl ClientQueues {
    /// Empty routing table.
    pub fn new() -> ClientQueues {
        ClientQueues::default()
    }

    /// Route one response to its client's queue.
    pub fn push(&mut self, resp: Response) {
        let c = resp.client as usize;
        if c >= self.queues.len() {
            self.queues.resize_with(c + 1, Default::default);
        }
        self.queues[c].push_back(resp);
    }

    /// Pop the oldest undelivered response for `client`.
    pub fn pop(&mut self, client: ClientId) -> Option<Response> {
        self.queues.get_mut(client as usize)?.pop_front()
    }

    /// Total undelivered responses across all clients.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(client: u32, id: u64) -> Response {
        Response {
            client,
            id,
            arrival_ns: 0,
            wait_ns: 0,
            done_ns: 10,
            reply: Reply::Got(None),
        }
    }

    #[test]
    fn queues_preserve_per_client_fifo_order() {
        let mut q = ClientQueues::new();
        q.push(resp(1, 10));
        q.push(resp(0, 5));
        q.push(resp(1, 11));
        assert_eq!(q.pending(), 3);
        assert_eq!(q.pop(1).unwrap().id, 10);
        assert_eq!(q.pop(1).unwrap().id, 11);
        assert_eq!(q.pop(1), None);
        assert_eq!(q.pop(0).unwrap().id, 5);
        assert_eq!(q.pop(7), None, "unknown client is empty, not a panic");
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn reply_conversion_covers_every_batch_reply() {
        assert_eq!(Reply::from(BatchReply::Got(Some(3))), Reply::Got(Some(3)));
        assert_eq!(Reply::from(BatchReply::Inserted(true)), Reply::Inserted(true));
        assert_eq!(Reply::from(BatchReply::Removed(false)), Reply::Deleted(false));
        assert_eq!(Reply::from(BatchReply::Counted(9)), Reply::Ranged(9));
        assert_eq!(
            Reply::from(BatchReply::MinIs(Some((1, 2)))),
            Reply::MinIs(Some((1, 2)))
        );
        assert_eq!(Reply::from(BatchReply::Popped(None)), Reply::Popped(None));
        assert_eq!(
            Reply::from(BatchReply::Failed(GfslError::InvalidKey(0))),
            Reply::Failed(GfslError::InvalidKey(0))
        );
    }

    #[test]
    fn latency_is_done_minus_arrival() {
        let mut r = resp(0, 0);
        r.arrival_ns = 100;
        r.done_ns = 350;
        assert_eq!(r.latency_ns(), 250);
    }
}
