//! Operation-history recording and per-key linearizability checking.
//!
//! The chaos campaign records every `insert`/`remove`/`get` as an
//! invoke/return interval on a shared logical clock. Because GFSL keys are
//! independent single-word registers (an operation on key `k` serializes
//! only with operations on `k`), full-history linearizability decomposes
//! into one check per key, which keeps the Wing & Gong search tractable:
//! a history is linearizable iff, for every key, some total order of that
//! key's operations (a) respects real-time order — an op that returned
//! before another was invoked comes first — and (b) replays correctly
//! against set-of-pairs semantics: insert succeeds iff absent (duplicate
//! inserts do not overwrite), remove succeeds iff present, get returns the
//! current value.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared logical clock: each tick returns a unique, totally ordered
/// timestamp.
#[derive(Debug, Default)]
pub struct HistoryClock(AtomicU64);

impl HistoryClock {
    /// A clock starting at zero.
    pub fn new() -> HistoryClock {
        HistoryClock(AtomicU64::new(0))
    }

    /// Take the next timestamp.
    pub fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

/// What an operation did and what it observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpAction {
    /// `insert(key, value)` returning whether the key was added.
    Insert {
        /// Value inserted (visible to later gets only if `ok`).
        value: u32,
        /// `true` = key was absent and is now present.
        ok: bool,
    },
    /// `remove(key)` returning whether the key was present.
    Remove {
        /// `true` = key was present and is now absent.
        ok: bool,
    },
    /// `get(key)` and the value it observed.
    Get {
        /// `Some(v)` = present with value `v`.
        found: Option<u32>,
    },
    /// `insert(key, value)` whose outcome is *unknown*: the operation
    /// crashed mid-protocol (containment mode) before acknowledging, so it
    /// may have linearized (key now present with `value`) or not happened
    /// at all. The checker tries both.
    InsertMaybe {
        /// Value the crashed insert would have stored.
        value: u32,
    },
    /// `remove(key)` whose outcome is unknown (crashed mid-protocol): it
    /// may have removed the key or left it untouched.
    RemoveMaybe,
}

/// One completed operation: key, action + outcome, and its real-time
/// interval on the [`HistoryClock`].
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// The key operated on.
    pub key: u32,
    /// Action and observed outcome.
    pub action: OpAction,
    /// Clock value taken immediately before invoking the operation.
    pub invoke: u64,
    /// Clock value taken immediately after it returned.
    pub ret: u64,
}

/// Per-thread history recorder. Collect one per worker, then merge the
/// `records` and run [`check_linearizable`].
#[derive(Debug)]
pub struct Recorder<'a> {
    clock: &'a HistoryClock,
    /// Completed operations, in this thread's program order.
    pub records: Vec<OpRecord>,
}

impl<'a> Recorder<'a> {
    /// A recorder on a shared clock.
    pub fn new(clock: &'a HistoryClock) -> Recorder<'a> {
        Recorder {
            clock,
            records: Vec::new(),
        }
    }

    /// Timestamp the start of an operation; pass the result to
    /// [`Recorder::finish`].
    pub fn invoke(&self) -> u64 {
        self.clock.tick()
    }

    /// Record a completed operation (timestamps its return).
    pub fn finish(&mut self, key: u32, action: OpAction, invoke: u64) {
        let ret = self.clock.tick();
        self.records.push(OpRecord {
            key,
            action,
            invoke,
            ret,
        });
    }

    /// Record a pinned snapshot/scan read as per-key [`OpAction::Get`]
    /// observations sharing one real-time window. `observed` lists every
    /// key of interest with what the scan saw (`None` = absent from the
    /// cut); `invoke` is the tick taken before the version was pinned.
    ///
    /// Soundness of the decomposition: a version-pinned scan (see
    /// [`crate::mvcc`]) linearizes at a single instant — the pin — inside
    /// `[invoke, ret]`. Per key, its observation is then indistinguishable
    /// from a `get` spanning the whole scan window, so every per-key
    /// violation the checker reports against these records is a real
    /// consistency violation of the scan. The converse cross-key property
    /// (all observations taken at the *same* instant) is what the
    /// cluster's moving-token test pins down; a per-key checker cannot
    /// express it.
    pub fn finish_scan(
        &mut self,
        observed: impl IntoIterator<Item = (u32, Option<u32>)>,
        invoke: u64,
    ) {
        let ret = self.clock.tick();
        for (key, found) in observed {
            self.records.push(OpRecord {
                key,
                action: OpAction::Get { found },
                invoke,
                ret,
            });
        }
    }
}

/// Encode a register state for memoization (`u64::MAX` = absent; values are
/// 32-bit so the encoding is injective).
fn encode(state: Option<u32>) -> u64 {
    match state {
        None => u64::MAX,
        Some(v) => u64::from(v),
    }
}

/// The candidate post-states of linearizing `op` now in `state`: up to two
/// (a crashed `*Maybe` op may or may not have taken effect), `[None, None]`
/// when the observed outcome contradicts `state`.
fn apply(state: Option<u32>, op: &OpRecord) -> [Option<Option<u32>>; 2] {
    match op.action {
        OpAction::Insert { value, ok: true } => [state.is_none().then_some(Some(value)), None],
        OpAction::Insert { ok: false, .. } => [state.is_some().then_some(state), None],
        OpAction::Remove { ok: true } => [state.is_some().then_some(None), None],
        OpAction::Remove { ok: false } => [state.is_none().then_some(state), None],
        OpAction::Get { found } => [(found == state).then_some(state), None],
        // A crashed op contradicts nothing; it either took effect or
        // no-opped. Branch only where the two differ.
        OpAction::InsertMaybe { value } => {
            if state.is_none() {
                [Some(Some(value)), Some(None)]
            } else {
                [Some(state), None]
            }
        }
        OpAction::RemoveMaybe => {
            if state.is_some() {
                [Some(None), Some(state)]
            } else {
                [Some(state), None]
            }
        }
    }
}

/// Growable bitmask over the ops of one key.
#[derive(Clone)]
struct Mask {
    words: Vec<u64>,
    set: usize,
    len: usize,
}

impl Mask {
    fn new(len: usize) -> Mask {
        Mask {
            words: vec![0; len.div_ceil(64)],
            set: 0,
            len,
        }
    }
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
        self.set += 1;
    }
    fn unset(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
        self.set -= 1;
    }
    fn full(&self) -> bool {
        self.set == self.len
    }
}

/// Wing & Gong DFS over one key's operations.
fn dfs(
    ops: &[OpRecord],
    done: &mut Mask,
    state: Option<u32>,
    memo: &mut HashSet<(Vec<u64>, u64)>,
) -> bool {
    if done.full() {
        return true;
    }
    if !memo.insert((done.words.clone(), encode(state))) {
        return false; // already explored this frontier
    }
    // Only an op invoked before every pending op's return can go first:
    // anything later is real-time-after some pending op.
    let min_ret = ops
        .iter()
        .enumerate()
        .filter(|&(i, _)| !done.get(i))
        .map(|(_, o)| o.ret)
        .min()
        .expect("pending op exists");
    for i in 0..ops.len() {
        if done.get(i) || ops[i].invoke > min_ret {
            continue;
        }
        for next in apply(state, &ops[i]).into_iter().flatten() {
            done.set(i);
            if dfs(ops, done, next, memo) {
                return true;
            }
            done.unset(i);
        }
    }
    false
}

/// Check one key's operations against an initial state. Returns `Err` with
/// a description when no valid linearization exists.
///
/// Crashed (`*Maybe`) operations are treated as *pending forever*: their
/// abort is not a response event, so no real-time edge points out of them
/// and they may linearize after operations invoked much later — which is
/// exactly what happens when the repair pass rolls a crashed op forward
/// long after its abort returned to the caller.
pub fn check_key(key: u32, initial: Option<u32>, ops: &[OpRecord]) -> Result<(), String> {
    debug_assert!(ops.iter().all(|o| o.key == key));
    let open: Vec<OpRecord> = ops
        .iter()
        .map(|o| match o.action {
            OpAction::InsertMaybe { .. } | OpAction::RemoveMaybe => {
                OpRecord { ret: u64::MAX, ..*o }
            }
            _ => *o,
        })
        .collect();
    let mut done = Mask::new(ops.len());
    let mut memo = HashSet::new();
    if dfs(&open, &mut done, initial, &mut memo) {
        Ok(())
    } else {
        Err(format!(
            "key {key}: no linearization of {} ops (initial {initial:?}): {ops:?}",
            ops.len()
        ))
    }
}

/// Check a merged multi-key history. `initial` gives keys present before the
/// recorded window (absent keys start empty). Returns every per-key
/// violation found.
pub fn check_linearizable(
    records: &[OpRecord],
    initial: &HashMap<u32, u32>,
) -> Result<(), Vec<String>> {
    let mut by_key: HashMap<u32, Vec<OpRecord>> = HashMap::new();
    for r in records {
        by_key.entry(r.key).or_default().push(*r);
    }
    let mut errors = Vec::new();
    for (key, ops) in &by_key {
        if let Err(e) = check_key(*key, initial.get(key).copied(), ops) {
            errors.push(e);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: u32, action: OpAction, invoke: u64, ret: u64) -> OpRecord {
        OpRecord {
            key,
            action,
            invoke,
            ret,
        }
    }

    #[test]
    fn sequential_history_passes() {
        let ops = [
            rec(5, OpAction::Insert { value: 50, ok: true }, 0, 1),
            rec(5, OpAction::Get { found: Some(50) }, 2, 3),
            rec(5, OpAction::Insert { value: 60, ok: false }, 4, 5),
            rec(5, OpAction::Get { found: Some(50) }, 6, 7),
            rec(5, OpAction::Remove { ok: true }, 8, 9),
            rec(5, OpAction::Get { found: None }, 10, 11),
            rec(5, OpAction::Remove { ok: false }, 12, 13),
        ];
        check_key(5, None, &ops).unwrap();
    }

    #[test]
    fn overlapping_ops_need_a_reordering() {
        // The get returned None although the insert was invoked first —
        // legal only because they overlap (the get linearizes first).
        let ops = [
            rec(9, OpAction::Insert { value: 1, ok: true }, 0, 5),
            rec(9, OpAction::Get { found: None }, 1, 2),
        ];
        check_key(9, None, &ops).unwrap();
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Same shape but NOT overlapping: the insert returned before the
        // get was invoked, so the get must see the value.
        let ops = [
            rec(9, OpAction::Insert { value: 1, ok: true }, 0, 1),
            rec(9, OpAction::Get { found: None }, 2, 3),
        ];
        assert!(check_key(9, None, &ops).is_err());
    }

    #[test]
    fn duplicate_insert_cannot_both_succeed() {
        let ops = [
            rec(3, OpAction::Insert { value: 7, ok: true }, 0, 4),
            rec(3, OpAction::Insert { value: 8, ok: true }, 1, 5),
        ];
        assert!(check_key(3, None, &ops).is_err(), "no remove between them");
    }

    #[test]
    fn insert_does_not_overwrite() {
        // Failed insert must not change the stored value.
        let ops = [
            rec(3, OpAction::Insert { value: 7, ok: true }, 0, 1),
            rec(3, OpAction::Insert { value: 8, ok: false }, 2, 3),
            rec(3, OpAction::Get { found: Some(8) }, 4, 5),
        ];
        assert!(check_key(3, None, &ops).is_err());
    }

    #[test]
    fn initial_state_respected() {
        let ops = [
            rec(1, OpAction::Get { found: Some(11) }, 0, 1),
            rec(1, OpAction::Remove { ok: true }, 2, 3),
        ];
        check_key(1, Some(11), &ops).unwrap();
        assert!(check_key(1, None, &ops).is_err());
    }

    #[test]
    fn multi_key_check_groups_independently() {
        let clock = HistoryClock::new();
        let mut r = Recorder::new(&clock);
        for key in [10u32, 20, 30] {
            let t = r.invoke();
            r.finish(key, OpAction::Insert { value: key * 2, ok: true }, t);
            let t = r.invoke();
            r.finish(key, OpAction::Get { found: Some(key * 2) }, t);
        }
        check_linearizable(&r.records, &HashMap::new()).unwrap();
        // Corrupt one key's observation.
        let mut bad = r.records.clone();
        bad[1].action = OpAction::Get { found: Some(999) };
        let errs = check_linearizable(&bad, &HashMap::new()).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("key 10"));
    }

    #[test]
    fn crashed_ops_linearize_either_way() {
        // A crashed insert may or may not have landed; both continuations
        // must pass, but it cannot conjure a different value.
        let saw_it = [
            rec(6, OpAction::InsertMaybe { value: 60 }, 0, 1),
            rec(6, OpAction::Get { found: Some(60) }, 2, 3),
        ];
        check_key(6, None, &saw_it).unwrap();
        let missed_it = [
            rec(6, OpAction::InsertMaybe { value: 60 }, 0, 1),
            rec(6, OpAction::Get { found: None }, 2, 3),
        ];
        check_key(6, None, &missed_it).unwrap();
        let wrong_value = [
            rec(6, OpAction::InsertMaybe { value: 60 }, 0, 1),
            rec(6, OpAction::Get { found: Some(61) }, 2, 3),
        ];
        assert!(check_key(6, None, &wrong_value).is_err());
        // A crashed remove likewise: gone or still present are both legal.
        let gone = [
            rec(7, OpAction::RemoveMaybe, 0, 1),
            rec(7, OpAction::Get { found: None }, 2, 3),
        ];
        check_key(7, Some(70), &gone).unwrap();
        let stayed = [
            rec(7, OpAction::RemoveMaybe, 0, 1),
            rec(7, OpAction::Get { found: Some(70) }, 2, 3),
        ];
        check_key(7, Some(70), &stayed).unwrap();
    }

    #[test]
    fn crashed_op_may_take_effect_long_after_its_abort() {
        // Observed in the recovery soak: remove(k) crashed before its merge
        // linearized, two later inserts still saw k present, and the repair
        // pass then rolled the merge (and with it the removal) forward — so
        // the final get finds k absent. Legal: the crashed remove never
        // responded, so it linearizes after both inserts.
        let ops = [
            rec(5, OpAction::RemoveMaybe, 0, 1),
            rec(5, OpAction::Insert { value: 9, ok: false }, 2, 3),
            rec(5, OpAction::Get { found: None }, 4, 5),
        ];
        check_key(5, Some(50), &ops).unwrap();
        // An *acknowledged* remove is a real response event: the identical
        // shape must still fail the real-time check.
        let acked = [
            rec(5, OpAction::Remove { ok: true }, 0, 1),
            rec(5, OpAction::Insert { value: 9, ok: false }, 2, 3),
            rec(5, OpAction::Get { found: None }, 4, 5),
        ];
        assert!(check_key(5, Some(50), &acked).is_err());
    }

    #[test]
    fn scan_observations_decompose_per_key() {
        let clock = HistoryClock::new();
        let mut r = Recorder::new(&clock);
        let t = r.invoke();
        r.finish(10, OpAction::Insert { value: 100, ok: true }, t);
        let t = r.invoke();
        r.finish(20, OpAction::Insert { value: 200, ok: true }, t);
        // The scan runs after both inserts returned: it must see both, and
        // key 30 (never written) as absent.
        let t = r.invoke();
        r.finish_scan([(10, Some(100)), (20, Some(200)), (30, None)], t);
        check_linearizable(&r.records, &HashMap::new()).unwrap();

        // A scan that missed an insert which returned before the scan was
        // invoked is a real-time violation on that key alone.
        let mut bad = r.records.clone();
        let scan_get = bad
            .iter_mut()
            .find(|o| o.key == 20 && matches!(o.action, OpAction::Get { .. }))
            .unwrap();
        scan_get.action = OpAction::Get { found: None };
        let errs = check_linearizable(&bad, &HashMap::new()).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("key 20"));
    }

    #[test]
    fn scan_overlapping_a_writer_may_cut_either_side() {
        // The scan window overlaps an insert: observing the key present or
        // absent are both valid cuts; observing a value never written is
        // not.
        for (found, ok) in [(Some(7), true), (None, true), (Some(8), false)] {
            let ops = [
                rec(5, OpAction::Insert { value: 7, ok: true }, 0, 10),
                rec(5, OpAction::Get { found }, 1, 11),
            ];
            assert_eq!(check_key(5, None, &ops).is_ok(), ok, "found {found:?}");
        }
    }

    #[test]
    fn three_way_race_with_valid_witness_passes() {
        // insert / remove / get all overlapping; get saw the value, so the
        // order insert < get < remove is a valid witness.
        let ops = [
            rec(4, OpAction::Insert { value: 44, ok: true }, 0, 10),
            rec(4, OpAction::Remove { ok: true }, 1, 11),
            rec(4, OpAction::Get { found: Some(44) }, 2, 12),
        ];
        check_key(4, None, &ops).unwrap();
    }
}
