//! Merged measurements from one experiment run.

use gfsl_gpu_mem::Traffic;
use gfsl_gpu_model::RunMeasurement;
use gfsl_simt::DivergenceStats;

/// Everything measured while running one workload against one structure.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunMetrics {
    /// Timed operations.
    pub n_ops: u64,
    /// Merged memory traffic from all workers.
    pub traffic: Traffic,
    /// Warp-level step/divergence accounting.
    pub divergence: DivergenceStats,
    /// Lock/CAS retries (contention signal).
    pub retries: u64,
    /// Search restarts (GFSL's lock-free edge case).
    pub restarts: u64,
    /// Splits performed (GFSL).
    pub splits: u64,
    /// Merges performed (GFSL).
    pub merges: u64,
    /// Host worker threads used.
    pub workers: u32,
    /// Update operations (inserts + deletes) among `n_ops`.
    pub update_ops: u64,
    /// Contended-resource width: bottom-level chunks (GFSL) or live keys
    /// (M&C); feeds the analytic contention term.
    pub contention_units: u64,
    /// Each warp lane runs its own operation (M&C) vs one op per team.
    pub op_per_lane: bool,
    /// Updates block on chunk locks (GFSL) vs retry CAS (M&C).
    pub blocking_updates: bool,
    /// Host wall-clock seconds for the timed phase (reference only; the
    /// modeled GPU time is what reproduces the paper).
    pub wall_seconds: f64,
}

impl RunMetrics {
    /// Host-side throughput in MOPS (reference metric).
    pub fn host_mops(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.n_ops as f64 / self.wall_seconds / 1e6
        } else {
            0.0
        }
    }

    /// Average memory transactions per operation.
    pub fn txns_per_op(&self) -> f64 {
        if self.n_ops == 0 {
            0.0
        } else {
            self.traffic.total_txns() as f64 / self.n_ops as f64
        }
    }

    /// Convert to the GPU cost model's input.
    pub fn to_measurement(&self) -> RunMeasurement {
        RunMeasurement {
            n_ops: self.n_ops,
            read_txns: self.traffic.read_txns,
            write_txns: self.traffic.write_txns,
            atomic_txns: self.traffic.atomic_txns,
            l2_hits: self.traffic.l2_hits,
            l2_misses: self.traffic.l2_misses,
            miss_sectors: self.traffic.miss_sectors,
            warp_steps: self.divergence.warp_steps,
            retries: self.retries,
            host_workers: self.workers,
            update_ops: self.update_ops,
            contention_units: self.contention_units,
            op_per_lane: self.op_per_lane,
            blocking_updates: self.blocking_updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let m = RunMetrics {
            n_ops: 1000,
            traffic: Traffic {
                read_txns: 4000,
                write_txns: 500,
                atomic_txns: 100,
                l2_hits: 3000,
                l2_misses: 1600,
                miss_sectors: 3200,
                words_read: 64_000,
                words_written: 500,
                prefetch_txns: 0,
                prefetch_fills: 0,
                prefetch_useful: 0,
            },
            divergence: DivergenceStats {
                warp_steps: 2000,
                lane_steps: 2000,
                divergent_branches: 0,
            },
            retries: 7,
            restarts: 1,
            splits: 3,
            merges: 2,
            workers: 4,
            update_ops: 200,
            contention_units: 50,
            op_per_lane: false,
            blocking_updates: true,
            wall_seconds: 0.01,
        };
        assert!((m.host_mops() - 0.1).abs() < 1e-9);
        assert!((m.txns_per_op() - 4.6).abs() < 1e-9);
        let rm = m.to_measurement();
        assert_eq!(rm.n_ops, 1000);
        assert_eq!(rm.warp_steps, 2000);
        assert_eq!(rm.retries, 7);
        assert_eq!(rm.host_workers, 4);
        assert_eq!(rm.l2_misses, 1600);
        assert_eq!(rm.update_ops, 200);
        assert_eq!(rm.contention_units, 50);
        assert!(rm.blocking_updates);
        assert!(!rm.op_per_lane);
    }
}
