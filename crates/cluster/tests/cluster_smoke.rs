//! Cluster smoke: routing, cross-shard stitching, split/merge data
//! preservation, consistent snapshots under concurrent writers, and the
//! load-aware rebalance policy.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use gfsl::{GfslParams, TeamSize};
use gfsl_cluster::{Cluster, RebalancePolicy, ReshardEvent};
use gfsl_rng::SplitMix64;

fn params16() -> GfslParams {
    GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        ..Default::default()
    }
}

#[test]
fn routed_ops_match_an_oracle_across_shards() {
    let cluster = Cluster::with_bounds(params16(), &[500, 1_000, 1_500]).unwrap();
    assert_eq!(cluster.shard_count(), 4);
    let mut oracle = BTreeMap::new();
    let mut rng = SplitMix64::new(0x5EED);
    for _ in 0..20_000u32 {
        let r = rng.next_u64();
        let k = (r % 2_000 + 1) as u32;
        let v = (r >> 32) as u32;
        match (r >> 20) % 3 {
            0 => {
                // Set-like insert: duplicates keep the resident value.
                if cluster.insert(k, v).unwrap() {
                    oracle.insert(k, v);
                }
            }
            1 => assert_eq!(cluster.remove(k).unwrap(), oracle.remove(&k).is_some()),
            _ => {
                assert_eq!(cluster.get(k).unwrap(), oracle.get(&k).copied());
                assert_eq!(cluster.contains(k).unwrap(), oracle.contains_key(&k));
            }
        }
    }
    cluster.assert_valid();
    let expect: Vec<(u32, u32)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(cluster.pairs(), expect);
    assert_eq!(cluster.len(), oracle.len());
}

#[test]
fn range_queries_stitch_across_shard_boundaries() {
    let cluster = Cluster::with_bounds(params16(), &[100, 200]).unwrap();
    let mut oracle = BTreeMap::new();
    for k in (1..=300u32).step_by(3) {
        cluster.insert(k, k * 7).unwrap();
        oracle.insert(k, k * 7);
    }
    for (lo, hi) in [(1, 300), (50, 250), (99, 101), (100, 200), (150, 150), (290, 300)] {
        let expect: Vec<(u32, u32)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(cluster.range(lo, hi).unwrap(), expect, "window [{lo}, {hi}]");
        assert_eq!(
            cluster.count_range(lo, hi).unwrap(),
            expect.len(),
            "count [{lo}, {hi}]"
        );
    }
}

#[test]
fn split_and_merge_preserve_every_pair_and_bump_the_epoch() {
    let cluster = Cluster::with_bounds(params16(), &[1_000]).unwrap();
    let mut rng = SplitMix64::new(9);
    for _ in 0..1_500 {
        let k = (rng.next_u64() % 2_000 + 1) as u32;
        cluster.insert(k, k ^ 0xABCD).unwrap();
    }
    let before = cluster.pairs();
    assert_eq!(cluster.epoch(), 0);

    let victim = cluster.shards()[0].id;
    let ev = cluster.split_shard(victim).unwrap().expect("splittable");
    let ReshardEvent::Split { shard, at, .. } = ev else {
        panic!("expected a split, got {ev:?}");
    };
    assert_eq!(shard, victim);
    assert!((1..1_000).contains(&at), "split key inside the old range");
    assert_eq!(cluster.epoch(), 1);
    assert_eq!(cluster.shard_count(), 3);
    cluster.assert_valid();
    assert_eq!(cluster.pairs(), before, "split loses nothing");

    let left = cluster.shards()[0].id;
    let ev = cluster.merge_with_right(left).unwrap().expect("mergeable");
    assert!(matches!(ev, ReshardEvent::Merge { .. }));
    assert_eq!(cluster.epoch(), 2);
    assert_eq!(cluster.shard_count(), 2);
    cluster.assert_valid();
    assert_eq!(cluster.pairs(), before, "merge loses nothing");

    // Retired ids are gone: acting on them is a clean no-op.
    assert_eq!(cluster.split_shard(victim).unwrap(), None);
    assert_eq!(cluster.merge_with_right(victim).unwrap(), None);
    // The rightmost shard has no right neighbour.
    let rightmost = cluster.shards().last().unwrap().id;
    assert_eq!(cluster.merge_with_right(rightmost).unwrap(), None);
}

#[test]
fn routed_ops_survive_concurrent_migration_churn() {
    let cluster = Cluster::with_bounds(params16(), &[250, 500, 750]).unwrap();
    let stop = AtomicBool::new(false);
    let (oracle, migrations) = std::thread::scope(|s| {
        let churn = s.spawn(|| {
            // Alternate splits and merges over whichever shards currently
            // cover the active key space.
            let mut rng = SplitMix64::new(0xC0DE);
            let mut done = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = (rng.next_u64() % 1_000 + 1) as u32;
                let id = cluster
                    .shards()
                    .iter()
                    .find(|sh| sh.owns(key))
                    .unwrap()
                    .id;
                let ev = if rng.coin(0.5) && cluster.shard_count() < 10 {
                    cluster.split_shard(id).unwrap()
                } else {
                    cluster.merge_with_right(id).unwrap()
                };
                done += u64::from(ev.is_some());
                std::thread::yield_now();
            }
            done
        });
        // One mutator keeps the oracle exact while the map churns under it.
        let mut oracle = BTreeMap::new();
        let mut rng = SplitMix64::new(0xFACE);
        for _ in 0..30_000u32 {
            let r = rng.next_u64();
            let k = (r % 1_000 + 1) as u32;
            match (r >> 32) % 4 {
                0 | 1 => {
                    if cluster.insert(k, k.wrapping_mul(31)).unwrap() {
                        oracle.insert(k, k.wrapping_mul(31));
                    }
                }
                2 => assert_eq!(cluster.remove(k).unwrap(), oracle.remove(&k).is_some()),
                _ => assert_eq!(cluster.get(k).unwrap(), oracle.get(&k).copied()),
            }
        }
        stop.store(true, Ordering::Relaxed);
        (oracle, churn.join().unwrap())
    });
    assert!(migrations > 0, "the churn thread must have migrated something");
    assert!(cluster.epoch() >= migrations, "every migration bumps the epoch");
    cluster.assert_valid();
    let expect: Vec<(u32, u32)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(cluster.pairs(), expect, "no write lost through {migrations} migrations");
}

#[test]
fn snapshots_are_consistent_cuts_even_across_shards() {
    // A writer keeps exactly one or two "token" keys alive, alternating
    // between the two shards' ranges (insert the new home, then remove the
    // old). A consistent cut can never observe zero tokens — but a
    // non-atomic per-shard walk could fence shard A after the token left
    // it and shard B before it arrived, observing none.
    let cluster = Cluster::with_bounds(params16(), &[500]).unwrap();
    let token = |i: u32| -> u32 {
        if i % 2 == 0 {
            1 + (i % 400)
        } else {
            501 + (i % 400)
        }
    };
    cluster.insert(token(0), 0).unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                cluster.insert(token(i + 1), i + 1).unwrap();
                cluster.remove(token(i)).unwrap();
                i += 1;
            }
        });
        for _ in 0..200 {
            let snap = cluster.snapshot();
            assert!(
                snap.pairs.windows(2).all(|w| w[0].0 < w[1].0),
                "snapshot pairs are strictly ascending"
            );
            assert!(
                (1..=2).contains(&snap.pairs.len()),
                "a consistent cut holds one or two tokens, saw {:?}",
                snap.pairs
            );
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    });
    // The final snapshot materializes back into a single valid GFSL.
    let snap = cluster.snapshot();
    let flat = snap.to_gfsl(params16()).unwrap();
    flat.assert_valid();
    assert_eq!(flat.pairs(), snap.pairs);
    assert_eq!(
        snap.cuts.iter().map(|c| c.pairs).sum::<usize>(),
        snap.pairs.len()
    );
}

#[test]
fn rebalance_splits_the_hot_shard_and_merges_cold_neighbours() {
    let cluster = Cluster::with_bounds(params16(), &[2_500, 5_000, 7_500]).unwrap();
    let mut rng = SplitMix64::new(4);
    for _ in 0..2_000 {
        let k = (rng.next_u64() % 10_000 + 1) as u32;
        cluster.insert(k, k).unwrap();
    }
    let policy = RebalancePolicy {
        min_window_ops: 500,
        max_shards: 8,
        min_shards: 2,
        ..Default::default()
    };

    // Hammer shard 0's range; it must split.
    let hot = cluster.shards()[0].id;
    for _ in 0..2_000 {
        let k = (rng.next_u64() % 2_000 + 1) as u32;
        let _ = cluster.get(k).unwrap();
    }
    match cluster.rebalance_step(&policy).unwrap() {
        Some(ReshardEvent::Split { shard, .. }) => assert_eq!(shard, hot, "hot shard splits"),
        other => panic!("expected a split of the hot shard, got {other:?}"),
    }
    cluster.assert_valid();

    // Now hammer only the top range; with splitting capped at the current
    // shard count, the cold low shards must merge.
    let before = cluster.shard_count();
    let merge_policy = RebalancePolicy {
        max_shards: before,
        ..policy
    };
    for _ in 0..2_000 {
        let k = (rng.next_u64() % 2_000 + 8_000) as u32;
        let _ = cluster.get(k).unwrap();
    }
    match cluster.rebalance_step(&merge_policy).unwrap() {
        Some(ReshardEvent::Merge { .. }) => {}
        other => panic!("expected a merge of cold neighbours, got {other:?}"),
    }
    assert_eq!(cluster.shard_count(), before - 1);
    cluster.assert_valid();

    // An idle window changes nothing.
    assert_eq!(cluster.rebalance_step(&policy).unwrap(), None);
}

/// The moving-token instant-T test, version-pinned edition: with the mvcc
/// knob on, `Cluster::snapshot` write-holds the fences only to stamp one
/// version per shard, then exports wait-free while a write-heavy soak
/// churns both shards. Every cut must still hold exactly one or two
/// tokens — and, being pinned, must record a nonzero per-shard version.
/// The pinned spanning range sees the same invariant through
/// `with_range_shards_pinned`.
#[test]
fn pinned_snapshots_are_consistent_cuts_under_write_soak() {
    let params = GfslParams {
        mvcc: true,
        ..params16()
    };
    let cluster = Cluster::with_bounds(params, &[500]).unwrap();
    // Token homes: shard 0 keys 1..=400, shard 1 keys 501..=900. The soak
    // churns disjoint ranges (shard 0: 401..=499, shard 1: 10_000..) so a
    // filtered view isolates the tokens.
    let token = |i: u32| -> u32 {
        if i % 2 == 0 {
            1 + (i % 400)
        } else {
            501 + (i % 400)
        }
    };
    let is_token = |k: u32| k <= 400 || (501..=900).contains(&k);
    cluster.insert(token(0), 0).unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mover = s.spawn(|| {
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                cluster.insert(token(i + 1), i + 1).unwrap();
                cluster.remove(token(i)).unwrap();
                i += 1;
            }
        });
        let soakers: Vec<_> = (0..2u32)
            .map(|t| {
                let cluster = &cluster;
                let stop = &stop;
                let base = if t == 0 { 401 } else { 10_000 };
                let span = if t == 0 { 99 } else { 4_000 };
                s.spawn(move || {
                    let mut i = 0u32;
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let k = base + (i % span);
                        cluster.insert(k, i).unwrap();
                        if i % 3 == 0 {
                            cluster.remove(k).unwrap();
                        }
                        i += 1;
                        ops += 1;
                    }
                    ops
                })
            })
            .collect();
        for _ in 0..100 {
            let snap = cluster.snapshot();
            assert!(snap.pinned(), "mvcc cut must be version-pinned: {:?}", snap.cuts);
            assert!(
                snap.pairs.windows(2).all(|w| w[0].0 < w[1].0),
                "snapshot pairs are strictly ascending"
            );
            let tokens = snap.pairs.iter().filter(|(k, _)| is_token(*k)).count();
            assert!(
                (1..=2).contains(&tokens),
                "a consistent cut holds one or two tokens, saw {tokens}"
            );
            // The pinned spanning fan-out cuts at its own instant T and
            // must see the same invariant across the shard boundary.
            let ranged = cluster.range(1, 900).unwrap();
            let tokens = ranged.iter().filter(|(k, _)| is_token(*k)).count();
            assert!(
                (1..=2).contains(&tokens),
                "a pinned spanning range holds one or two tokens, saw {tokens}"
            );
            // Breathe between cuts: back-to-back fence.write() pressure on
            // a write-preferring RwLock starves the writers' shared-mode
            // stamps, and the soak-progress assertion below is the point
            // of the test. Real snapshot cadences have gaps.
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        stop.store(true, Ordering::Relaxed);
        mover.join().unwrap();
        let soak_ops: u64 = soakers.into_iter().map(|w| w.join().unwrap()).sum();
        // Write-heavy means write-heavy: the soak must have made real
        // progress while 200 pinned cuts were exporting.
        assert!(soak_ops > 1_000, "soak starved: only {soak_ops} ops");
    });
    // A pinned cut materializes back into a single valid GFSL, exactly as
    // the legacy cut does.
    let snap = cluster.snapshot();
    let flat = snap.to_gfsl(params16()).unwrap();
    flat.assert_valid();
    assert_eq!(flat.pairs(), snap.pairs);
    assert_eq!(
        snap.cuts.iter().map(|c| c.pairs).sum::<usize>(),
        snap.pairs.len()
    );
}
