//! Service-loop benchmark: closed-loop clients through the `gfsl-serve`
//! front end (admission → epoch batching → dispatch) vs the raw batch loop
//! on the same [10,10,80] mix.
//!
//! Besides the criterion timings, this target writes a machine-readable
//! `BENCH_serve.json` (to `$GFSL_BENCH_OUT`, default `results/`) with the
//! per-policy throughput, efficiency ratio, and tail latencies, so the
//! service overhead is trackable across commits without scraping output.

use criterion::{criterion_group, criterion_main, Criterion};
use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_harness::report::{mops, ratio, Table};
use gfsl_serve::{
    raw_batch_mops, serve, BatchPolicy, ClosedSource, ExecMode, Fifo, KeyRangeSharded,
    ReadWriteSeparated, ServeConfig, ServiceReport,
};
use gfsl_workload::{ClosedLoop, ServeMix};

const RANGE: u32 = 100_000;
const N_OPS: usize = 100_000;
const SEED: u64 = 0x5E7E_BE7C;

fn prefilled(range: u32) -> Gfsl {
    let params = GfslParams {
        team_size: TeamSize::ThirtyTwo,
        pool_chunks: GfslParams::chunks_for(range as u64 + N_OPS as u64, TeamSize::ThirtyTwo),
        seed: SEED,
        ..Default::default()
    };
    Gfsl::prefilled(params, (1..range).filter(|k| k % 2 == 0)).unwrap()
}

fn measured(list: &Gfsl, policy: &mut dyn BatchPolicy) -> ServiceReport {
    let clients = 512;
    let pop = ClosedLoop::new(
        clients,
        N_OPS as u64 / clients as u64,
        0,
        ServeMix::C80,
        RANGE,
        SEED,
    );
    let mut src = ClosedSource::new(pop, 1_000);
    let cfg = ServeConfig {
        workers: 4,
        epoch_ns: 200_000,
        batch_ops: 512,
        max_batch: 256,
        intake_cap: 8192,
        seed: SEED,
        exec: ExecMode::Measured,
    };
    serve(list, &cfg, policy, &mut src)
}

fn bench_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");

    let list = prefilled(RANGE);
    let stream = ServeMix::C80.stream(SEED ^ 0xBA5E, RANGE, N_OPS);
    let mut raw = 0.0f64;
    g.bench_function("raw_batch_c80", |b| {
        b.iter(|| raw = raw_batch_mops(&list, &stream, 4))
    });

    let mut reports: Vec<ServiceReport> = Vec::new();
    let mut fifo = Fifo::default();
    let mut sharded = KeyRangeSharded::new(RANGE);
    let mut rw = ReadWriteSeparated::default();
    let policies: [(&str, &mut dyn BatchPolicy); 3] = [
        ("service_fifo_c80", &mut fifo),
        ("service_sharded_c80", &mut sharded),
        ("service_rw_split_c80", &mut rw),
    ];
    for (id, policy) in policies {
        let mut last = None;
        g.bench_function(id, |b| {
            b.iter(|| {
                let list = prefilled(RANGE);
                let r = measured(&list, policy);
                assert_eq!(r.metrics.ops as usize, N_OPS);
                last = Some(r);
            })
        });
        reports.push(last.expect("bench ran at least once"));
    }
    g.finish();

    // Machine-readable rollup.
    let mut t = Table::new(
        "Serve bench: policy throughput vs raw batch ([10,10,80])",
        &["policy", "MOPS", "vs raw", "p50 us", "p99 us", "sheds"],
    );
    t.row(vec![
        "raw-batch".into(),
        mops(raw),
        ratio(1.0),
        "-".into(),
        "-".into(),
        "0".into(),
    ]);
    for r in &reports {
        t.row(vec![
            r.policy.into(),
            mops(r.metrics.mops()),
            ratio(r.metrics.mops() / raw.max(f64::MIN_POSITIVE)),
            format!("{:.1}", r.metrics.latency.p50_ns() as f64 / 1.0e3),
            format!("{:.1}", r.metrics.latency.p99_ns() as f64 / 1.0e3),
            r.metrics.sheds.to_string(),
        ]);
    }
    let out = std::env::var("GFSL_BENCH_OUT").unwrap_or_else(|_| "results".into());
    match gfsl_harness::report::write_bench_json(std::path::Path::new(&out), "serve", &[t]) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("bench json write failed: {e}"),
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
