//! Lock-free range scans over the bottom level.
//!
//! Ordered traversal is the reason to use a skiplist instead of a hash
//! table (the paper contrasts GFSL with the GPU hash tables of MegaKV and
//! Stadium Hashing, which cannot serve range queries). The scan walks the
//! bottom level like `searchLateral`, so it is lock-free and sees a
//! best-effort consistent view: every key that is present for the whole
//! scan is reported exactly once; keys inserted/removed concurrently may or
//! may not appear, exactly like the point operations.

use gfsl_gpu_mem::MemProbe;

use crate::chunk::{is_user_key, lock_state, NIL, LOCK_UNLOCKED};
use crate::skiplist::GfslHandle;

impl<'a, P: MemProbe> GfslHandle<'a, P> {
    /// Visit every `(key, value)` with `lo <= key <= hi` in ascending key
    /// order. Returns the number of entries visited.
    ///
    /// A key can appear in two consecutive chunk snapshots while a merge is
    /// in flight (the rightmost copy is authoritative); the scan
    /// deduplicates by keeping the last copy seen and never yields keys out
    /// of order.
    pub fn for_each_in_range(
        &mut self,
        lo: u32,
        hi: u32,
        mut f: impl FnMut(u32, u32),
    ) -> usize {
        if lo > hi {
            return 0;
        }
        let lo = lo.max(1); // 0 is the -inf sentinel
        if !is_user_key(lo) && lo != 1 {
            return 0;
        }
        self.with_pin(|h| h.range_pinned(lo, hi, &mut f))
    }

    fn range_pinned(&mut self, lo: u32, hi: u32, f: &mut dyn FnMut(u32, u32)) -> usize {
        let team = self.list.team;
        let kernel = self.list.params.kernel;
        // Hinted start with the same walk budget as point lookups: chunks
        // left of `lo`'s enclosing chunk contribute nothing to the scan, so
        // a far-left hint would silently lengthen it by the whole gap.
        let mut cur = self.hinted_lateral(lo).enclosing;
        let mut pending: Option<(u32, u32)> = None;
        let mut noted = false;
        let mut count = 0usize;
        // Certified reads throughout: a torn single read racing a remove's
        // left-shift can miss a key that is present for the whole scan,
        // which the scan contract forbids.
        while let Some((c, view)) = self.next_live_certified(cur) {
            if !noted {
                // The first live chunk encloses `lo`: cache it as the next
                // scan's descent shortcut. A certified view's lock word was
                // observed unlocked, but re-derive defensively.
                noted = true;
                let w = view.lock_word(&team);
                self.note_hint(c, (lock_state(w) == LOCK_UNLOCKED).then_some(w));
            }
            // Foresight: the scan will almost always continue into the
            // successor, so start pulling it while this chunk's entries are
            // filtered and yielded.
            self.prefetch_chunk(view.next(&team));
            let words = view.data_words(&team);
            let in_range = kernel.keys_in_range(words, lo, hi);
            for lane in 0..team.dsize() {
                if !in_range.is_set(lane) {
                    continue;
                }
                let e = view.entry(lane);
                let k = e.key();
                match pending {
                    Some((pk, _)) if k == pk => {
                        // Cross-chunk duplicate mid-merge: rightmost wins.
                        pending = Some((k, e.val()));
                    }
                    Some((pk, pv)) if k > pk => {
                        f(pk, pv);
                        count += 1;
                        pending = Some((k, e.val()));
                    }
                    Some(_) => {
                        // Out-of-order artifact mid-merge: skip the stale
                        // smaller copy.
                    }
                    None => pending = Some((k, e.val())),
                }
            }
            // Data arrays are sorted, so a live key above `hi` means every
            // later chunk only holds larger keys: the scan is complete.
            let live = kernel.keys_live(words).bits();
            let le_hi = kernel.keys_le(words, hi).bits();
            if live & !le_hi != 0 {
                break;
            }
            let next = view.next(&team);
            if next == NIL {
                break;
            }
            cur = next;
        }
        if let Some((pk, pv)) = pending.take() {
            f(pk, pv);
            count += 1;
        }
        count
    }

    /// Collect `lo..=hi` into a vector (see
    /// [`for_each_in_range`](Self::for_each_in_range)).
    pub fn range(&mut self, lo: u32, hi: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        self.for_each_in_range(lo, hi, |k, v| out.push((k, v)));
        out
    }

    /// Number of keys in `lo..=hi`.
    pub fn count_range(&mut self, lo: u32, hi: u32) -> usize {
        self.for_each_in_range(lo, hi, |_, _| {})
    }
}

#[cfg(test)]
mod tests {
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    fn built(n: u32) -> Gfsl {
        let list = Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        })
        .unwrap();
        {
            let mut h = list.handle();
            for k in 1..=n {
                h.insert(k * 3, k).unwrap(); // keys 3, 6, 9, ...
            }
        }
        list
    }

    #[test]
    fn range_returns_sorted_window() {
        let list = built(500);
        let mut h = list.handle();
        let got = h.range(30, 60);
        let want: Vec<(u32, u32)> = (10..=20).map(|k| (k * 3, k)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn range_edges_and_empties() {
        let list = built(100);
        let mut h = list.handle();
        assert_eq!(h.range(1, 2), vec![]);
        assert_eq!(h.range(3, 3), vec![(3, 1)]);
        assert_eq!(h.range(301, 400), vec![]);
        assert_eq!(h.range(10, 5), vec![], "inverted bounds");
        assert_eq!(h.count_range(1, u32::MAX - 1), 100);
    }

    #[test]
    fn range_spans_many_chunks() {
        let list = built(2000);
        let mut h = list.handle();
        assert_eq!(h.count_range(1, 6000), 2000);
        let window = h.range(2998, 3302);
        assert!(window.len() > 90, "spans several 14-entry chunks");
        assert!(window.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn range_skips_deleted_keys() {
        let list = built(200);
        let mut h = list.handle();
        for k in (30..=120u32).filter(|k| k % 3 == 0).step_by(2) {
            assert!(h.remove(k));
        }
        // Deleted: every other multiple of 3 in [30,120] = multiples of 6.
        let got = h.range(30, 120);
        assert!(!got.is_empty());
        assert!(got.iter().all(|&(k, _)| k % 3 == 0 && k % 6 != 0),
            "only odd multiples of 3 survive: {got:?}");
        assert_eq!(got.len(), (30..=120).filter(|k| k % 3 == 0 && k % 6 != 0).count());
    }

    #[test]
    fn range_concurrent_with_writers_is_sane() {
        let list = built(1000);
        std::thread::scope(|s| {
            let list_ref = &list;
            s.spawn(move || {
                let mut h = list_ref.handle();
                for k in 1..=1000u32 {
                    if k % 2 == 0 {
                        h.remove(k * 3);
                    }
                }
            });
            s.spawn(move || {
                let mut h = list_ref.handle();
                for _ in 0..50 {
                    let got = h.range(1, 3000);
                    // Sorted, unique, and within the original key universe.
                    assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
                    assert!(got.iter().all(|&(k, _)| k % 3 == 0));
                }
            });
        });
        list.assert_valid();
    }
}
