//! The durability contract between the serving loop and a persistence tier.
//!
//! The epoch batcher acknowledges a request by routing its response back to
//! the client. With a [`CommitSink`] installed (see
//! [`crate::service::serve_durable`]), that acknowledgement is *gated*: the
//! driver hands every write effect of a collected epoch to the sink, and
//! only when [`CommitSink::commit`] returns — i.e. the records are on
//! storage as durable as the configured [`DurabilityContract`] promises —
//! do the responses route. This is group commit: one sink call (one fsync)
//! amortizes over the whole epoch's writes.
//!
//! The serve crate owns only the *contract*; the write-ahead log, the
//! checkpointer, and recovery live in `gfsl-durable`, which implements
//! [`CommitSink`] for its engines.

/// How durable an acknowledged write is — the policy behind the group
/// commit's sync step, surfaced as an explicit contract so a deployment
/// states what an ack means instead of inheriting a file-API default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityContract {
    /// `fsync` (`File::sync_all`): an acked write survives process death
    /// *and* power loss — data and file metadata are on stable storage.
    #[default]
    Synced,
    /// `fdatasync` (`File::sync_data`): an acked write survives process
    /// death and power loss, but file metadata (e.g. mtime) may lag. On
    /// segment-preallocating logs this is the classic latency saver.
    DataSynced,
    /// No sync: records are written to the OS page cache only. An acked
    /// write survives process death (the kernel still holds the pages) but
    /// NOT power loss or kernel panic. The throughput ceiling, for
    /// workloads that accept it.
    Buffered,
}

impl DurabilityContract {
    /// Run the contract's sync step on `file`.
    pub fn sync(self, file: &std::fs::File) -> std::io::Result<()> {
        match self {
            DurabilityContract::Synced => file.sync_all(),
            DurabilityContract::DataSynced => file.sync_data(),
            DurabilityContract::Buffered => Ok(()),
        }
    }

    /// Stable lowercase name (table rows, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            DurabilityContract::Synced => "fsync",
            DurabilityContract::DataSynced => "fdatasync",
            DurabilityContract::Buffered => "none",
        }
    }

    /// All contracts, strongest first (experiment sweeps).
    pub const ALL: [DurabilityContract; 3] = [
        DurabilityContract::Synced,
        DurabilityContract::DataSynced,
        DurabilityContract::Buffered,
    ];
}

impl std::fmt::Display for DurabilityContract {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One state-changing effect an epoch acknowledged: what must be durable
/// before the corresponding response may route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEffect {
    /// The key written.
    pub key: u32,
    /// `Some(v)`: the key now holds `v` (effective insert); `None`: the key
    /// was removed (effective delete).
    pub value: Option<u32>,
}

/// A persistence tier the epoch batcher drains into.
///
/// `commit` must not return until the effects are as durable as the sink's
/// contract promises; the driver acknowledges the epoch's requests only
/// after it does. An `Err` means the sink can no longer uphold the
/// contract — the driver treats that as fatal (it must never acknowledge a
/// write it cannot make durable).
pub trait CommitSink {
    /// Make `effects` durable, in order, as one group commit. Returns the
    /// last log sequence number assigned (0 when `effects` is empty).
    fn commit(&mut self, effects: &[WriteEffect]) -> std::io::Result<u64>;
}

/// Counting sink for tests: records effects in memory, never blocks.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Every effect committed, in commit order.
    pub effects: Vec<WriteEffect>,
    /// Number of `commit` calls (= group commits).
    pub commits: u64,
}

impl CommitSink for MemorySink {
    fn commit(&mut self, effects: &[WriteEffect]) -> std::io::Result<u64> {
        self.effects.extend_from_slice(effects);
        self.commits += 1;
        Ok(self.effects.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_names_and_order() {
        assert_eq!(DurabilityContract::Synced.name(), "fsync");
        assert_eq!(DurabilityContract::DataSynced.name(), "fdatasync");
        assert_eq!(DurabilityContract::Buffered.name(), "none");
        assert_eq!(DurabilityContract::ALL[0], DurabilityContract::Synced);
        assert_eq!(DurabilityContract::default(), DurabilityContract::Synced);
    }

    #[test]
    fn contract_sync_runs_on_a_real_file() {
        let dir = std::env::temp_dir().join("gfsl_contract_sync_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let f = std::fs::File::create(&path).unwrap();
        for c in DurabilityContract::ALL {
            c.sync(&f).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_sink_counts_group_commits() {
        let mut sink = MemorySink::default();
        let a = [
            WriteEffect { key: 1, value: Some(10) },
            WriteEffect { key: 2, value: None },
        ];
        assert_eq!(sink.commit(&a).unwrap(), 2);
        assert_eq!(sink.commit(&[]).unwrap(), 2);
        assert_eq!(sink.commits, 2);
        assert_eq!(sink.effects.len(), 2);
    }
}
