//! Per-worker memory-traffic counters.
//!
//! Counters are plain integers owned by one worker thread and merged after a
//! run; the instrumented fast path therefore costs a handful of increments,
//! not atomic RMWs.

/// Memory-system event totals for one worker (or, after merging, one run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Traffic {
    /// Coalesced read transactions issued (one per distinct line per
    /// half-warp per access).
    pub read_txns: u64,
    /// Write transactions issued.
    pub write_txns: u64,
    /// Atomic (CAS / atomic-store-with-contention) transactions. On Maxwell
    /// atomics resolve in L2 and serialize per address.
    pub atomic_txns: u64,
    /// Transactions that hit in the simulated L2.
    pub l2_hits: u64,
    /// Transactions that missed to DRAM.
    pub l2_misses: u64,
    /// 32-byte DRAM sectors fetched by the misses (a fully-used line costs
    /// four sectors; a scattered 8-byte access costs one).
    pub miss_sectors: u64,
    /// Total 8-byte words transferred by reads (for bandwidth accounting).
    pub words_read: u64,
    /// Total words written.
    pub words_written: u64,
}

impl Traffic {
    /// Fresh, zeroed counters.
    pub fn new() -> Traffic {
        Traffic::default()
    }

    /// All transactions of any kind.
    pub fn total_txns(&self) -> u64 {
        self.read_txns + self.write_txns + self.atomic_txns
    }

    /// L2 hit ratio over transactions that probed the cache.
    pub fn l2_hit_ratio(&self) -> f64 {
        let probes = self.l2_hits + self.l2_misses;
        if probes == 0 {
            0.0
        } else {
            self.l2_hits as f64 / probes as f64
        }
    }

    /// Merge another worker's counters into this one.
    pub fn merge(&mut self, o: &Traffic) {
        self.read_txns += o.read_txns;
        self.write_txns += o.write_txns;
        self.atomic_txns += o.atomic_txns;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.miss_sectors += o.miss_sectors;
        self.words_read += o.words_read;
        self.words_written += o.words_written;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let t = Traffic::new();
        assert_eq!(t.total_txns(), 0);
        assert_eq!(t.l2_hit_ratio(), 0.0);
    }

    #[test]
    fn totals_and_ratio() {
        let t = Traffic {
            read_txns: 10,
            write_txns: 4,
            atomic_txns: 1,
            l2_hits: 9,
            l2_misses: 3,
            miss_sectors: 7,
            words_read: 100,
            words_written: 40,
        };
        assert_eq!(t.total_txns(), 15);
        assert!((t.l2_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_is_componentwise_sum() {
        let mut a = Traffic {
            read_txns: 1,
            write_txns: 2,
            atomic_txns: 3,
            l2_hits: 4,
            l2_misses: 5,
            miss_sectors: 11,
            words_read: 6,
            words_written: 7,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            Traffic {
                read_txns: 2,
                write_txns: 4,
                atomic_txns: 6,
                l2_hits: 8,
                l2_misses: 10,
                miss_sectors: 22,
                words_read: 12,
                words_written: 14,
            }
        );
    }
}
