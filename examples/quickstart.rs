//! Quickstart: build a GFSL, use it from several threads, inspect it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gfsl::{Gfsl, GfslParams, TeamSize};

fn main() {
    // A skiplist sized for ~100K keys, with the paper's best configuration
    // (32-entry chunks, p_chunk = 1, merge threshold DSIZE/3).
    let list = Gfsl::new(GfslParams::sized_for(100_000)).expect("construct");

    // Single-threaded use: get a handle (the moral equivalent of one GPU
    // team) and call set operations on it.
    {
        let mut h = list.handle();
        assert!(h.insert(42, 4200).unwrap());
        assert!(!h.insert(42, 9999).unwrap(), "duplicate keys are rejected");
        assert_eq!(h.get(42), Some(4200));
        assert!(h.contains(42));
        assert!(h.remove(42));
        assert!(!h.contains(42));
    }

    // Concurrent use: share &list, one handle per thread. Handles embed
    // independent RNG streams (for the split raise-coin) and statistics.
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let list = &list;
            s.spawn(move || {
                let mut h = list.handle();
                // Each thread owns keys congruent to t mod 4.
                for i in 0..25_000u32 {
                    let k = i * 4 + t + 1;
                    h.insert(k, k * 2).expect("pool sized for this");
                }
                for i in (0..25_000u32).step_by(2) {
                    let k = i * 4 + t + 1;
                    assert!(h.remove(k));
                }
            });
        }
    });

    // Quiescent inspection: ordered iteration, length, invariant checking.
    let n = list.len();
    println!("keys left      : {n}");
    println!("height         : {:?}", list);
    println!("chunks in pool : {}", list.chunks_allocated());
    let pairs = list.pairs();
    assert_eq!(pairs.len(), 50_000);
    assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
    assert!(pairs.iter().all(|&(k, v)| v == k * 2), "values intact");

    // The full structural validator (sortedness, lateral ordering, level
    // subsets, down-pointer reachability, max-field consistency):
    list.assert_valid();
    println!("all invariants hold");

    // The same API runs with 16-entry chunks (GFSL-16, 128-byte nodes):
    let small = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        ..GfslParams::sized_for(1_000)
    })
    .unwrap();
    let mut h = small.handle();
    h.insert(7, 70).unwrap();
    assert_eq!(h.get(7), Some(70));
    println!("GFSL-16 works too");
}
