//! # Cycle-level SIMT executor
//!
//! An event-driven simulator of the GPU execution model the paper runs on:
//! SMs hold resident warps; a per-SM scheduler issues one warp instruction
//! per cycle from whichever resident warp is ready; warps stall on memory
//! for a latency decided by the shared L2 model; DRAM serves misses through
//! a bandwidth-limited queue.
//!
//! Each warp runs a *program*: a lockstep state machine that performs one
//! step at a time (a coalesced team read for GFSL, a 32-lane scattered read
//! for M&C) and reports its memory footprint so the scheduler can charge
//! latency and bandwidth. On a read-only workload the structure is static,
//! so the programs read the real data-structure memory directly and the
//! whole simulation is **single-threaded and bit-for-bit deterministic**.
//!
//! This gives an estimate of Contains throughput that is *independent* of
//! the roofline model in `gfsl-gpu-model`: the roofline converts aggregate
//! measured traffic into time; the executor schedules every individual
//! warp step against latencies and a DRAM queue. The `cyclesim` harness
//! experiment compares the two — agreement within a small factor means the
//! reproduction's conclusions don't hinge on either model's simplifications.
//!
//! Scope: read-only (Contains) workloads. Update operations mutate shared
//! chunks and would need the full algorithm re-expressed as resumable state
//! machines to interleave at cycle granularity; the paper's Fig. 5.4a and
//! the read-dominated mixtures are where the cycle-level view matters most
//! (they are the regimes where latency hiding and issue pressure, not
//! bandwidth alone, decide the outcome).

#![warn(missing_docs)]

pub mod machine;
pub mod sched;
pub mod tasks;

pub use machine::{ExecConfig, ExecReport};
pub use sched::Device;
pub use tasks::{GfslContainsWarp, McContainsWarp, Step, WarpProgram};
