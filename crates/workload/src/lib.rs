//! Deterministic workload generation for the GFSL evaluation (paper §5.1).
//!
//! Benchmarks are parameterized by an operation mixture `[i, d, c]`
//! (percent inserts / deletes / contains), a key range, and an operation
//! count. Keys and operation types are drawn uniformly; the initial
//! structure is prefilled according to the benchmark type:
//!
//! * mixed-ops tests start from a random key set of exactly half the range;
//! * Contains-only and Delete-only tests start with *all* keys of the
//!   range, inserted in random order;
//! * Insert-only tests start empty, and single-op-type tests size their
//!   operation count to the key range "in order not to oversaturate small
//!   structures".
//!
//! Everything is driven by explicit-seed SplitMix64/Lehmer64 streams so
//! runs are bit-for-bit reproducible (we deliberately avoid `rand` and OS
//! entropy).

#![warn(missing_docs)]

pub mod arrival;
pub mod dist;
pub mod hotshard;
pub mod mix;
pub mod prefill;
pub mod rng;
pub mod spec;

pub use arrival::{Arrival, ClientStream, ClosedLoop, Exponential, OpenLoop, ServeMix, ServeOp};
pub use dist::{KeyDist, Zipf};
pub use hotshard::HotShard;
pub use mix::{Op, OpKind, OpMix};
pub use prefill::Prefill;
pub use rng::{Lehmer64, SplitMix64};
pub use spec::{format_count, BenchKind, WorkloadSpec};
