//! Thread-per-core TCP edge server.
//!
//! One blocking acceptor thread hands each accepted connection to a worker
//! over a channel, round-robin — a connection stays pinned to its worker
//! for life (connection affinity: no cross-core handoff per request, the
//! session's buffers and read-your-writes table stay core-local). Each
//! worker owns its sessions outright and runs a nonblocking poll loop:
//!
//! 1. adopt newly assigned connections;
//! 2. drain readable bytes, decode frames, and *admit* each request — a
//!    full epoch buffer or a degraded supervisor rung answers with a typed
//!    [`Resp::Shed`] frame (retry-after in ms) instead of queueing without
//!    bound;
//! 3. once the epoch buffer reaches `batch_ops` or the `epoch_us` deadline
//!    passes, execute the whole buffer against the engine in one batched
//!    call (the GPU-style cooperative dispatch the structure is built for),
//!    group-commit write effects into the durable sink *before* any reply
//!    is queued (commit-before-ack), then route replies back to each
//!    session by request id;
//! 4. flush, and shed connections that broke framing (one [`Resp::Proto`]
//!    frame, then close) or stalled mid-frame past the slow-client timeout.
//!
//! Everything is std networking — no async runtime; the thread-per-core
//! loop with nonblocking sockets *is* the runtime.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gfsl_serve::{CommitSink, Reply, ServiceMode, ShedError, Supervisor, WriteEffect};
use gfsl_workload::ServeOp;

use crate::engine::EdgeEngine;
use crate::proto::{self, Resp};
use crate::session::Session;

/// Shared handle to a durable commit sink (workers group-commit through it).
pub type SharedSink = Arc<Mutex<dyn CommitSink + Send>>;

/// Edge server tuning.
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// Worker threads (thread-per-core; each owns its connections).
    pub workers: usize,
    /// Epoch batch size: execute once this many requests are buffered.
    pub batch_ops: usize,
    /// Epoch deadline, microseconds: execute a partial batch this old.
    pub epoch_us: u64,
    /// Per-worker admission bound: requests buffered beyond this shed.
    pub intake_cap: usize,
    /// Slow-client guard: a session stalled mid-frame (or refusing to read
    /// its responses) longer than this is dropped.
    pub idle_timeout_ms: u64,
    /// Run the degradation-ladder supervisor (sheds writes under fault
    /// pressure); off = always [`ServiceMode::Normal`].
    pub supervised: bool,
    /// Drain-rate estimate feeding shed retry-after hints, ns per request.
    pub drain_ns_per_req: u64,
}

impl Default for EdgeConfig {
    fn default() -> EdgeConfig {
        EdgeConfig {
            workers: 2,
            batch_ops: 32,
            epoch_us: 200,
            intake_cap: 256,
            idle_timeout_ms: 2_000,
            supervised: false,
            drain_ns_per_req: 2_000,
        }
    }
}

/// Monotonic server counters, shared across workers.
#[derive(Debug, Default)]
pub struct EdgeStats {
    /// Connections accepted.
    pub conns_accepted: AtomicU64,
    /// Connections closed (any cause).
    pub conns_closed: AtomicU64,
    /// Connections shed for framing violations (after a `Proto` frame).
    pub proto_errors: AtomicU64,
    /// Connections dropped by the slow-client timeout.
    pub timeouts: AtomicU64,
    /// Engine replies delivered successfully.
    pub ops_ok: AtomicU64,
    /// Engine replies delivered as `Failed`.
    pub ops_failed: AtomicU64,
    /// Requests answered with a `Shed` frame.
    pub sheds: AtomicU64,
    /// Pings answered at the edge.
    pub pings: AtomicU64,
    /// Pinned snapshot counts answered at the edge (never batched).
    pub snaps: AtomicU64,
    /// Epoch batches executed.
    pub epochs: AtomicU64,
    /// Read-your-writes violations observed across all sessions.
    pub ryw_violations: AtomicU64,
    /// Highest supervisor rung any worker reached (severity 0–3).
    pub max_mode: AtomicU64,
}

/// Plain-value copy of [`EdgeStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub conns_accepted: u64,
    /// Connections closed.
    pub conns_closed: u64,
    /// Framing-violation sheds.
    pub proto_errors: u64,
    /// Slow-client timeouts.
    pub timeouts: u64,
    /// Successful engine replies.
    pub ops_ok: u64,
    /// Failed engine replies.
    pub ops_failed: u64,
    /// Shed frames sent.
    pub sheds: u64,
    /// Pings answered.
    pub pings: u64,
    /// Pinned snapshot counts answered.
    pub snaps: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Read-your-writes violations.
    pub ryw_violations: u64,
    /// Highest supervisor severity reached.
    pub max_mode: u64,
}

impl EdgeStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            proto_errors: self.proto_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            ops_ok: self.ops_ok.load(Ordering::Relaxed),
            ops_failed: self.ops_failed.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            pings: self.pings.load(Ordering::Relaxed),
            snaps: self.snaps.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
            ryw_violations: self.ryw_violations.load(Ordering::Relaxed),
            max_mode: self.max_mode.load(Ordering::Relaxed),
        }
    }
}

/// A running edge server. Dropping without [`EdgeServer::shutdown`] leaks
/// the threads for the process lifetime; tests and benches should shut
/// down explicitly to collect final counters.
pub struct EdgeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<EdgeStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl EdgeServer {
    /// Bind `127.0.0.1:0` and start the acceptor plus worker threads, no
    /// durable sink (replies ack from memory alone).
    pub fn start(engine: EdgeEngine, cfg: EdgeConfig) -> io::Result<EdgeServer> {
        EdgeServer::launch(engine, cfg, None)
    }

    /// Like [`EdgeServer::start`], with commit-before-ack through `sink`:
    /// no write is acknowledged on the wire before its effect is committed.
    pub fn start_durable(
        engine: EdgeEngine,
        cfg: EdgeConfig,
        sink: SharedSink,
    ) -> io::Result<EdgeServer> {
        EdgeServer::launch(engine, cfg, Some(sink))
    }

    fn launch(
        engine: EdgeEngine,
        cfg: EdgeConfig,
        sink: Option<SharedSink>,
    ) -> io::Result<EdgeServer> {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.batch_ops > 0 && cfg.intake_cap >= cfg.batch_ops);
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(EdgeStats::default());
        let start = Instant::now();

        let mut senders = Vec::with_capacity(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let engine = engine.clone();
            let cfg = cfg.clone();
            let stop = stop.clone();
            let stats = stats.clone();
            let sink = sink.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("edge-worker-{w}"))
                    .spawn(move || worker_loop(engine, cfg, rx, stop, stats, sink, start))
                    .expect("spawn edge worker"),
            );
        }

        let astop = stop.clone();
        let astats = stats.clone();
        let acceptor = std::thread::Builder::new()
            .name("edge-acceptor".into())
            .spawn(move || {
                let mut next = 0usize;
                for conn in listener.incoming() {
                    if astop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    astats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                    // Round-robin pinning; a dead worker's channel just
                    // drops the stream (only happens during shutdown).
                    let _ = senders[next % senders.len()].send(stream);
                    next += 1;
                }
            })
            .expect("spawn edge acceptor");

        Ok(EdgeServer {
            addr,
            stop,
            stats,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Stop accepting, drain workers, and return the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the acceptor's blocking accept with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats.snapshot()
    }
}

/// One admitted request waiting in the epoch buffer.
struct PendingReq {
    conn: usize,
    req_id: u64,
    op: ServeOp,
}

struct Conn {
    sess: Session,
    /// Socket hit EOF/error; kept only until its in-flight ops complete.
    closed: bool,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    engine: EdgeEngine,
    cfg: EdgeConfig,
    rx: mpsc::Receiver<TcpStream>,
    stop: Arc<AtomicBool>,
    stats: Arc<EdgeStats>,
    sink: Option<SharedSink>,
    start: Instant,
) {
    // Extra frames decoded per pass beyond epoch-buffer room: the shed
    // trickle. Keeps typed retry-after frames flowing under overload
    // without spending the core decoding a firehose it would only discard.
    const SHED_QUANTUM: usize = 32;

    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut pending: Vec<PendingReq> = Vec::new();
    let mut epoch_started: Option<Instant> = None;
    // Rotating read offset so a budget-exhausted pass doesn't starve the
    // same tail sessions every time.
    let mut rr = 0usize;
    let mut supervisor = Supervisor::default();
    let idle_timeout = Duration::from_millis(cfg.idle_timeout_ms);
    let epoch_deadline = Duration::from_micros(cfg.epoch_us);

    loop {
        let stopping = stop.load(Ordering::Relaxed);
        let now = Instant::now();
        let mut progressed = false;

        // Adopt newly pinned connections.
        while let Ok(stream) = rx.try_recv() {
            if stream.set_nonblocking(true).is_err() {
                stats.conns_closed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let sess = Session::new(stream, now);
            let slot = conns.iter().position(Option::is_none);
            match slot {
                Some(i) => conns[i] = Some(Conn { sess, closed: false }),
                None => conns.push(Some(Conn { sess, closed: false })),
            }
            progressed = true;
        }

        let mode = if cfg.supervised {
            supervisor.mode()
        } else {
            ServiceMode::Normal
        };

        // Read, decode, admit — under a decode budget. Each pass decodes
        // at most (epoch-buffer room + SHED_QUANTUM) frames across all
        // sessions; the surplus stays in session/kernel buffers, where TCP
        // backpressure throttles a firehose peer. Under overload the core
        // thus keeps executing admitted work instead of decoding traffic
        // it would only discard, while the quantum keeps a visible trickle
        // of typed Shed frames (retry-after hints) flowing to clients.
        let mut budget = cfg.intake_cap.saturating_sub(pending.len()) + SHED_QUANTUM;
        let nconns = conns.len();
        for k in 0..nconns {
            if budget == 0 {
                break;
            }
            let i = (rr + k) % nconns;
            let Some(conn) = conns[i].as_mut() else { continue };
            if conn.closed {
                continue;
            }
            let io = conn.sess.poll_read(now, budget);
            budget -= io.reqs.len().min(budget);
            if io.closed {
                conn.closed = true;
            }
            if io.proto_error.is_some() {
                stats.proto_errors.fetch_add(1, Ordering::Relaxed);
            }
            if !io.reqs.is_empty() {
                progressed = true;
            }
            for (req_id, req) in io.reqs {
                if let proto::Req::SnapRange(lo, hi) = req {
                    // Answered at admission from a pinned snapshot: the
                    // read is wait-free w.r.t. writers, so queueing it
                    // behind the epoch batch would only add latency — and
                    // it consumes no epoch-buffer slot, so it is never
                    // shed for depth.
                    stats.snaps.fetch_add(1, Ordering::Relaxed);
                    let resp = match engine.snap_count(lo, hi) {
                        Ok((version, count)) => Resp::Snapped { version, count },
                        Err(e) => Resp::Failed { code: proto::error_code(&e) },
                    };
                    conn.sess.push_resp(req_id, &resp);
                    continue;
                }
                let Some(op) = req.op() else {
                    stats.pings.fetch_add(1, Ordering::Relaxed);
                    conn.sess.push_resp(req_id, &Resp::Pong);
                    continue;
                };
                let depth = pending.len();
                let admitted =
                    depth < cfg.intake_cap && mode.admits(op, depth, cfg.intake_cap) && !stopping;
                if admitted {
                    if pending.is_empty() {
                        epoch_started = Some(now);
                    }
                    pending.push(PendingReq { conn: i, req_id, op });
                    conn.sess.inflight += 1;
                } else {
                    let shed = ShedError {
                        depth,
                        retry_after_ns: (depth as u64)
                            .saturating_mul(cfg.drain_ns_per_req)
                            .max(cfg.drain_ns_per_req),
                    };
                    stats.sheds.fetch_add(1, Ordering::Relaxed);
                    conn.sess.push_resp(req_id, &proto::shed_resp(mode, &shed));
                }
            }
        }
        rr = rr.wrapping_add(1);

        // Execute a full or expired epoch (always drain when stopping).
        let due = pending.len() >= cfg.batch_ops
            || epoch_started.is_some_and(|t| now.duration_since(t) >= epoch_deadline)
            || (stopping && !pending.is_empty());
        if due && !pending.is_empty() {
            progressed = true;
            let batch: Vec<PendingReq> = std::mem::take(&mut pending);
            epoch_started = None;
            let ops: Vec<ServeOp> = batch.iter().map(|p| p.op).collect();
            let mut replies: Vec<Reply> = Vec::with_capacity(ops.len());
            engine.execute(&ops, &mut replies);
            debug_assert_eq!(replies.len(), ops.len());

            // Commit-before-ack: the durable sink sees every write effect
            // of this epoch before any reply frame is queued.
            let mut commit_failed = false;
            if let Some(sink) = &sink {
                let effects = epoch_effects(&batch, &replies);
                if !effects.is_empty() {
                    commit_failed = sink
                        .lock()
                        .expect("commit sink poisoned")
                        .commit(&effects)
                        .is_err();
                }
            }

            let mut faults = 0u64;
            for (p, reply) in batch.iter().zip(&replies) {
                if matches!(reply, Reply::Failed(_)) {
                    faults += 1;
                }
                let Some(conn) = conns[p.conn].as_mut() else { continue };
                conn.sess.inflight -= 1;
                if commit_failed && !p.op.is_read_only() {
                    stats.ops_failed.fetch_add(1, Ordering::Relaxed);
                    conn.sess.push_resp(p.req_id, &Resp::Failed { code: 0 });
                    continue;
                }
                conn.sess.observe_reply(p.op, reply);
                match reply {
                    Reply::Failed(_) => stats.ops_failed.fetch_add(1, Ordering::Relaxed),
                    _ => stats.ops_ok.fetch_add(1, Ordering::Relaxed),
                };
                conn.sess.push_resp(p.req_id, &proto::reply_resp(reply));
            }
            stats.epochs.fetch_add(1, Ordering::Relaxed);

            if cfg.supervised {
                let now_ns = start.elapsed().as_nanos() as u64;
                let m = supervisor.observe(now_ns, faults, engine.quarantine_depth());
                stats.max_mode.fetch_max(m.severity() as u64, Ordering::Relaxed);
            }
        }

        // Flush and reap.
        for slot in conns.iter_mut() {
            let Some(conn) = slot.as_mut() else { continue };
            if !conn.sess.poll_write(now) {
                conn.closed = true;
            }
            let timed_out = conn.sess.stalled()
                && now.duration_since(conn.sess.last_progress) >= idle_timeout;
            if timed_out && !conn.closed {
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                conn.closed = true;
            }
            let gone = (conn.closed || conn.sess.dead()) && conn.sess.inflight == 0;
            if gone {
                stats
                    .ryw_violations
                    .fetch_add(conn.sess.ryw_violations, Ordering::Relaxed);
                stats.conns_closed.fetch_add(1, Ordering::Relaxed);
                *slot = None;
                progressed = true;
            }
        }

        if stopping && pending.is_empty() {
            // Final pass already flushed what it could; account for the
            // sessions going down with the ship.
            for conn in conns.iter_mut().flatten() {
                stats
                    .ryw_violations
                    .fetch_add(conn.sess.ryw_violations, Ordering::Relaxed);
                stats.conns_closed.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }

        if !progressed {
            // Nothing readable, nothing due: yield the core briefly. The
            // epoch deadline bounds the added latency.
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

/// The durable write effects of one executed epoch, in batch order (the
/// same mapping the in-process serve loop commits).
fn epoch_effects(batch: &[PendingReq], replies: &[Reply]) -> Vec<WriteEffect> {
    let mut effects = Vec::new();
    for (p, reply) in batch.iter().zip(replies) {
        match (p.op, reply) {
            (ServeOp::Insert(k, v), Reply::Inserted(true)) => {
                effects.push(WriteEffect { key: k, value: Some(v) });
            }
            (ServeOp::Delete(k), Reply::Deleted(true)) => {
                effects.push(WriteEffect { key: k, value: None });
            }
            (ServeOp::PopMin, Reply::Popped(Some((k, _)))) => {
                effects.push(WriteEffect { key: *k, value: None });
            }
            _ => {}
        }
    }
    effects
}
