//! Whole-structure invariant validation (test/debug support).
//!
//! These checks encode the correctness argument of paper §4.3 and are run by
//! the test suites at quiescence (no concurrent operations). They are *not*
//! part of the concurrent algorithm.

use std::collections::BTreeSet;

use gfsl_gpu_mem::NoProbe;
use gfsl_simt::Team;

use crate::chunk::{ChunkView, KEY_INF, KEY_NEG_INF, LOCK_UNLOCKED, LOCK_ZOMBIE, NIL};
use crate::skiplist::Gfsl;

/// A violated invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed.
    pub rule: &'static str,
    /// Level at which it failed.
    pub level: usize,
    /// Offending chunk index, if applicable.
    pub chunk: Option<u32>,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[level {}{}] {}: {}",
            self.level,
            self.chunk.map(|c| format!(", chunk {c}")).unwrap_or_default(),
            self.rule,
            self.detail
        )
    }
}

/// The *chunk-local* structural invariants of a single non-zombie chunk
/// view: data lanes sorted / unique / left-packed, and the NEXT lane's max
/// consistent with the data. Shared by [`Gfsl::validate`] (quiescent, full
/// walk), the online repair decision table, and the background scrubber —
/// these are exactly the rules a chunk can be checked against in isolation,
/// without trusting any other chunk.
pub(crate) fn chunk_rules(team: &Team, v: &ChunkView, level: usize, chunk: u32) -> Vec<Violation> {
    let mut violations = Vec::new();
    let keys: Vec<u32> = v.live_entries(team).map(|(_, e)| e.key()).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if keys != sorted {
        violations.push(Violation {
            rule: "chunk-sorted-unique",
            level,
            chunk: Some(chunk),
            detail: format!("data array {keys:?}"),
        });
    }
    let packed = (0..team.dsize())
        .map(|i| v.entry(i).is_empty())
        .collect::<Vec<_>>();
    if let Some(first_empty) = packed.iter().position(|&e| e) {
        if packed[first_empty..].iter().any(|&e| !e) {
            violations.push(Violation {
                rule: "empties-at-end",
                level,
                chunk: Some(chunk),
                detail: "live entry after EMPTY entry".into(),
            });
        }
    }
    let max = v.max(team);
    let next = v.next(team);
    let data_max = keys.iter().copied().filter(|&k| k != KEY_NEG_INF).max();
    if next == NIL {
        if max != KEY_INF {
            violations.push(Violation {
                rule: "last-chunk-max-inf",
                level,
                chunk: Some(chunk),
                detail: format!("max = {max}"),
            });
        }
    } else if let Some(dm) = data_max {
        if max != dm && (keys != vec![KEY_NEG_INF]) {
            violations.push(Violation {
                rule: "max-is-largest-key",
                level,
                chunk: Some(chunk),
                detail: format!("max = {max}, largest key = {dm}"),
            });
        }
    }
    violations
}

impl Gfsl {
    /// Collect the key set of a level by walking its chain, skipping zombie
    /// contents. Quiescent use only.
    pub fn level_keys(&self, level: usize) -> Vec<u32> {
        let mut h = self.handle_with(NoProbe);
        let team = self.team;
        let mut out = Vec::new();
        let mut cur = self.head_of(level);
        loop {
            let v = h.read_chunk(cur);
            if !v.is_zombie(&team) {
                for (_, e) in v.live_entries(&team) {
                    if e.key() != KEY_NEG_INF {
                        out.push(e.key());
                    }
                }
            }
            let next = v.next(&team);
            if next == NIL {
                return out;
            }
            cur = next;
        }
    }

    /// All keys currently in the set (bottom level). Quiescent use only.
    pub fn keys(&self) -> Vec<u32> {
        self.level_keys(0)
    }

    /// All key-value pairs in ascending key order (an eager collect of
    /// [`Gfsl::export_pairs`]). Quiescent use only.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        self.export_pairs().collect()
    }

    /// Number of keys in the set. O(n) scan; quiescent use only.
    pub fn len(&self) -> usize {
        self.keys().len()
    }

    /// Is the set empty? Quiescent use only.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Check every structural invariant; returns all violations found.
    /// Quiescent use only.
    pub fn validate(&self) -> Vec<Violation> {
        let mut violations = Vec::new();
        let team = self.team;
        let mut h = self.handle_with(NoProbe);
        let levels = self.params.max_levels();
        let mut level_sets: Vec<BTreeSet<u32>> = Vec::with_capacity(levels);

        for level in 0..levels {
            let mut seen = BTreeSet::new();
            let mut cur = self.head_of(level);
            let mut prev_max: Option<u32> = None;
            let mut first = true;
            let mut visited = std::collections::HashSet::new();
            loop {
                if !visited.insert(cur) {
                    violations.push(Violation {
                        rule: "acyclic-chain",
                        level,
                        chunk: Some(cur),
                        detail: "next-pointer cycle".into(),
                    });
                    break;
                }
                let v: ChunkView = h.read_chunk(cur);
                let zombie = v.is_zombie(&team);
                let lock = crate::chunk::lock_state(v.lock_word(&team));
                if lock != LOCK_UNLOCKED && lock != LOCK_ZOMBIE {
                    violations.push(Violation {
                        rule: "quiescent-unlocked",
                        level,
                        chunk: Some(cur),
                        detail: format!("lock word {lock} at quiescence"),
                    });
                }
                if !zombie {
                    let keys: Vec<u32> = v.live_entries(&team).map(|(_, e)| e.key()).collect();
                    // Chunk-local rules (sorted/unique, packed, max field).
                    violations.extend(chunk_rules(&team, &v, level, cur));
                    // First chunk holds -inf (head may lag behind a zombified
                    // first chunk, in which case this is checked on its
                    // replacement via the zombie walk).
                    if first && keys.first() != Some(&KEY_NEG_INF) && v.entry(0).key() != KEY_NEG_INF
                    {
                        violations.push(Violation {
                            rule: "first-chunk-neg-inf",
                            level,
                            chunk: Some(cur),
                            detail: format!("entry 0 key = {}", v.entry(0).key()),
                        });
                    }
                    let max = v.max(&team);
                    let next = v.next(&team);
                    // Lateral ordering between non-zombie chunks.
                    if let Some(pm) = prev_max {
                        if let Some(minimum) = keys.first() {
                            if *minimum != KEY_NEG_INF && *minimum <= pm {
                                violations.push(Violation {
                                    rule: "lateral-order",
                                    level,
                                    chunk: Some(cur),
                                    detail: format!("min key {minimum} <= previous max {pm}"),
                                });
                            }
                        }
                    }
                    if next != NIL {
                        prev_max = Some(max);
                    }
                    for k in keys {
                        if k != KEY_NEG_INF && !seen.insert(k) {
                            violations.push(Violation {
                                rule: "level-unique-keys",
                                level,
                                chunk: Some(cur),
                                detail: format!("key {k} appears twice in level"),
                            });
                        }
                    }
                    first = false;
                }
                let next = v.next(&team);
                if next == NIL {
                    break;
                }
                cur = next;
            }
            level_sets.push(seen);
        }

        // Upper levels are subsets of the level below.
        for (below, pair) in level_sets.windows(2).enumerate() {
            let level = below + 1;
            if let Some(stray) = pair[1].difference(&pair[0]).next() {
                violations.push(Violation {
                    rule: "upper-subset-of-lower",
                    level,
                    chunk: None,
                    detail: format!("key {stray} in level {level} missing from level {below}"),
                });
            }
        }

        // Every upper-level down-pointer reaches its key laterally below.
        let mut h = self.handle_with(NoProbe);
        for (level, set) in level_sets.iter().enumerate().take(levels).skip(1) {
            if set.is_empty() {
                continue;
            }
            let mut cur = self.head_of(level);
            loop {
                let v = h.read_chunk(cur);
                if !v.is_zombie(&team) {
                    for (_, e) in v.live_entries(&team) {
                        if e.key() == KEY_NEG_INF {
                            continue;
                        }
                        let r = h.search_lateral(e.key(), e.val());
                        if r.found.is_none() {
                            violations.push(Violation {
                                rule: "down-pointer-reaches-key",
                                level,
                                chunk: Some(cur),
                                detail: format!(
                                    "key {} not laterally reachable from chunk {}",
                                    e.key(),
                                    e.val()
                                ),
                            });
                        }
                    }
                }
                let next = v.next(&team);
                if next == NIL {
                    break;
                }
                cur = next;
            }
        }

        violations
    }

    /// Panic with a readable report if any invariant is violated.
    pub fn assert_valid(&self) {
        let v = self.validate();
        assert!(
            v.is_empty(),
            "GFSL invariant violations:\n{}",
            v.iter().map(|x| format!("  {x}\n")).collect::<String>()
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    fn list16() -> Gfsl {
        Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn fresh_list_is_valid_and_empty() {
        let list = list16();
        list.assert_valid();
        assert!(list.is_empty());
        assert_eq!(list.keys(), Vec::<u32>::new());
    }

    #[test]
    fn valid_after_inserts() {
        let list = list16();
        let mut h = list.handle();
        for k in (1..=800u32).rev() {
            h.insert(k, k * 2).unwrap();
        }
        list.assert_valid();
        let keys = list.keys();
        assert_eq!(keys.len(), 800);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "ascending order");
        let pairs = list.pairs();
        assert!(pairs.iter().all(|&(k, v)| v == k * 2));
    }

    #[test]
    fn valid_after_mixed_churn() {
        let list = list16();
        let mut h = list.handle();
        let mut reference = std::collections::BTreeSet::new();
        let mut x: u64 = 0x853c49e6748fea9b;
        for i in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 2000 + 1) as u32;
            if (x >> 32).is_multiple_of(2) || i < 1000 {
                assert_eq!(h.insert(k, k).unwrap(), reference.insert(k));
            } else {
                assert_eq!(h.remove(k), reference.remove(&k));
            }
        }
        list.assert_valid();
        let keys: Vec<u32> = list.keys();
        let expect: Vec<u32> = reference.into_iter().collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn valid_for_32_entry_chunks_too() {
        let list = Gfsl::new(GfslParams::default()).unwrap();
        let mut h = list.handle();
        for k in 1..=3000u32 {
            h.insert(k * 7, k).unwrap();
        }
        for k in 1..=1500u32 {
            assert!(h.remove(k * 14), "k={k}");
        }
        list.assert_valid();
        assert_eq!(list.len(), 1500);
    }
}
