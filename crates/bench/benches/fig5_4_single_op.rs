//! Fig. 5.4 — single-operation-type benchmarks: Contains-only over a full
//! structure, Insert-only into a fresh structure, Delete-only from a full
//! structure (host per-op cost; modeled MOPS from `repro --experiment
//! fig5_4`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_bench::{prefilled_mc, KeyStream};
use gfsl_workload::Prefill;

fn full_gfsl(range: u32) -> Gfsl {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::ThirtyTwo,
        pool_chunks: GfslParams::chunks_for(range as u64 * 2, TeamSize::ThirtyTwo),
        ..Default::default()
    })
    .unwrap();
    {
        let mut h = list.handle();
        for k in Prefill::FullShuffled.keys(range, 3) {
            h.insert(k, k).unwrap();
        }
    }
    list
}

fn bench_single_op(c: &mut Criterion) {
    const RANGE: u32 = 100_000;
    let mut g = c.benchmark_group("fig5_4_single_op");

    // 5.4a: Contains-only (all probes hit).
    let list = full_gfsl(RANGE);
    let mut h = list.handle();
    let mut keys = KeyStream::new(RANGE);
    g.bench_function("gfsl32_contains_full", |b| {
        b.iter(|| assert!(h.contains(keys.next_key())))
    });

    let mc = prefilled_mc(RANGE); // half full: probe hit/miss mix
    let mut mh = mc.handle();
    let mut keys = KeyStream::new(RANGE);
    g.bench_function("mc_contains_half", |b| b.iter(|| mh.contains(keys.next_key())));

    // 5.4b: Insert-only — amortized cost of building 10K-key structures.
    g.bench_function("gfsl32_insert_only_10k", |b| {
        b.iter_batched(
            || Gfsl::new(GfslParams::sized_for(20_000)).unwrap(),
            |list| {
                {
                    let mut h = list.handle();
                    for k in Prefill::FullShuffled.keys(10_000, 11) {
                        h.insert(k, k).unwrap();
                    }
                }
                list
            },
            BatchSize::PerIteration,
        )
    });

    // 5.4c: Delete-only — drain a freshly built 10K structure.
    g.bench_function("gfsl32_delete_only_10k", |b| {
        b.iter_batched(
            || {
                let list = full_gfsl(10_000);
                let order = Prefill::FullShuffled.keys(10_000, 13);
                (list, order)
            },
            |(list, order)| {
                {
                    let mut h = list.handle();
                    for k in order {
                        assert!(h.remove(k));
                    }
                }
                list
            },
            BatchSize::PerIteration,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_single_op);
criterion_main!(benches);
