//! The service driver: a virtual-time, epoch-batching event loop.
//!
//! The driver pulls timed requests from a [`RequestSource`], admits them
//! into the bounded intake queue (shedding on overflow), closes an *epoch*
//! when either the deadline expires or enough requests are queued (the
//! continuous-batching size trigger), hands the epoch to a
//! [`BatchPolicy`], and dispatches the resulting warp-aligned batches onto
//! a pool of worker threads — one GFSL team each. Responses route through
//! per-client FIFO queues back to the source, which lets closed-loop
//! clients schedule their next issue.
//!
//! ## Clocks and determinism
//!
//! Batch *formation* runs entirely in virtual time. What advances the
//! virtual clock across an epoch's execution is the [`ExecMode`]:
//!
//! * [`ExecMode::Measured`] — advance by the measured wall-clock execution
//!   time. This is the benchmarking mode: throughput numbers are real, but
//!   formation depends on machine speed, so the trace hash is only stable
//!   on one machine by accident.
//! * [`ExecMode::Modeled`] — advance by `ns_per_op · max_ops_per_worker`,
//!   a deterministic service-time model. Every admission decision, epoch
//!   close, batch, and dispatch grant is then a pure function of the seed
//!   and config: the run's [trace hash](crate::trace::TraceHash) replays
//!   bit-for-bit.
//! * [`ExecMode::Chaos`] — modeled time, plus every batch executes under a
//!   seeded [`ChaosController`] that serializes *individual memory
//!   accesses* in a deterministic adversarial order. The per-wave chaos
//!   trace folds into the service trace, extending the replay guarantee
//!   down to the memory-access schedule.
//!
//! Chaos dispatch runs in waves of at most `workers` batches: every batch
//! in a wave is a chaos participant, and the controller only grants turns
//! when all live participants are parked — so no participant may ever be
//! waiting for a worker thread. Waves keep participants ≤ workers.
//!
//! ## Pipelining
//!
//! In the measured and modeled modes the driver keeps one epoch in flight:
//! epoch N+1's batches are pushed *before* epoch N's completions are
//! collected, so response routing, completion feedback, and admission all
//! overlap worker execution. Chaos mode never pipelines (see above).

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use gfsl::batch::{BatchOp, BatchReply};
use gfsl::chaos::{ChaosController, ChaosOptions, ChaosProbe};
use gfsl::{Gfsl, GfslHandle, MemProbe};
use gfsl_workload::ServeOp;

use crate::admission::IntakeQueue;
use crate::durability::{CommitSink, WriteEffect};
use crate::metrics::ServiceMetrics;
use crate::request::{to_batch_op, ClientQueues, Reply, Request, Response};
use crate::scheduler::{Batch, BatchPolicy, PolicyCtx};
use crate::source::RequestSource;
use crate::supervisor::{ServiceMode, Supervisor};
use crate::trace::TraceHash;

/// Chunks the background scrubber re-validates per epoch when the structure
/// runs in containment mode. Small on purpose: the scrubber is bycatch of
/// the driver loop, not a second workload.
const SCRUB_BUDGET_PER_EPOCH: usize = 32;

/// What advances the virtual clock across an epoch's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Wall-clock execution time (benchmark mode; nondeterministic clock).
    Measured,
    /// Deterministic model: `ns_per_op` per request, workers in parallel.
    Modeled {
        /// Modeled service cost per request, nanoseconds.
        ns_per_op: u64,
    },
    /// Modeled time + per-wave chaos scheduling of every memory access.
    Chaos {
        /// Modeled service cost per request, nanoseconds.
        ns_per_op: u64,
        /// Extra stall turns the chaos scheduler may inject at crash
        /// points (see [`ChaosOptions::max_stall_turns`]).
        max_stall_turns: u8,
    },
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads (one GFSL team each).
    pub workers: usize,
    /// Epoch deadline: an epoch closes at most this long (virtual ns)
    /// after it opens.
    pub epoch_ns: u64,
    /// Size trigger: an epoch closes early once this many requests are
    /// queued, and at most this many dispatch per epoch.
    pub batch_ops: usize,
    /// Per-batch request cap (rounded down to a team-width multiple).
    pub max_batch: usize,
    /// Intake queue bound; arrivals beyond it are shed.
    pub intake_cap: usize,
    /// Seed for chaos waves (formation itself is seeded by the source).
    pub seed: u64,
    /// Execution-time mode.
    pub exec: ExecMode,
}

impl ServeConfig {
    /// Sensible defaults for `workers` worker teams: 200 µs epochs, 1024-op
    /// size trigger, 256-op batches, 8192-deep intake, measured clock.
    pub fn new(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            epoch_ns: 200_000,
            batch_ops: 1024,
            max_batch: 256,
            intake_cap: 8192,
            seed: 0xC0F_FEE5,
            exec: ExecMode::Measured,
        }
    }

    /// Panic on nonsensical configuration.
    pub fn validate(&self) {
        assert!(self.workers > 0, "need at least one worker");
        assert!(self.epoch_ns > 0, "epoch deadline must be positive");
        assert!(self.batch_ops > 0, "size trigger must be positive");
        assert!(self.max_batch > 0, "batch cap must be positive");
        assert!(self.intake_cap > 0, "intake capacity must be positive");
    }
}

/// Run seed: `GFSL_TEST_SEED` if set (the repo-wide replay convention),
/// else `default`.
pub fn env_seed(default: u64) -> u64 {
    std::env::var("GFSL_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The outcome of one service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The batch policy that formed the dispatches.
    pub policy: &'static str,
    /// Aggregated service metrics.
    pub metrics: ServiceMetrics,
    /// FNV-1a fold of the full service schedule (see [`TraceHash`]).
    pub trace_hash: u64,
}

struct WorkItem {
    seq: u64,
    epoch: u64,
    reqs: Vec<Request>,
    probe: Option<ChaosProbe>,
}

struct DoneItem {
    seq: u64,
    epoch: u64,
    replies: Vec<(Request, Reply)>,
}

/// One dispatched epoch whose batches are still executing. The driver keeps
/// at most one epoch in flight: it pushes epoch N+1's batches *before*
/// collecting epoch N, so response routing and admission overlap worker
/// execution (software pipelining — without it, workers idle through every
/// driver pass and the service/raw throughput ratio caps well below 1).
struct InFlight {
    /// Batches to collect.
    n: usize,
    /// Epoch these batches belong to (completions are tagged: with two
    /// epochs in the pipe, the done channel interleaves them).
    epoch: u64,
    /// Virtual dispatch time (wait component of every response).
    dispatch_t: u64,
    /// Largest per-worker op count (modeled service time of the epoch).
    per_worker_max: u64,
    /// Wall-clock dispatch instant (measured service time of the epoch).
    exec_t0: Instant,
}

/// Shared work queue: the driver pushes batches, idle workers pull. Pulling
/// instead of pinning keeps workers busy when batch costs are uneven.
struct Injector {
    state: Mutex<(VecDeque<WorkItem>, bool)>,
    cv: Condvar,
}

impl Injector {
    fn new() -> Injector {
        Injector {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, item: WorkItem) {
        self.state.lock().unwrap().0.push_back(item);
        self.cv.notify_one();
    }

    fn close(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }

    fn pop(&self) -> Option<WorkItem> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.0.pop_front() {
                return Some(item);
            }
            if st.1 {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }
}

fn exec_batch<P: MemProbe>(
    h: &mut GfslHandle<'_, P>,
    reqs: Vec<Request>,
    hinted: bool,
) -> Vec<(Request, Reply)> {
    let ops: Vec<BatchOp> = reqs.iter().map(|r| to_batch_op(r.op)).collect();
    let mut replies: Vec<BatchReply> = Vec::with_capacity(ops.len());
    if hinted {
        h.execute_batch_hinted(&ops, &mut replies);
    } else {
        h.execute_batch(&ops, &mut replies);
    }
    reqs.into_iter()
        .zip(replies)
        .map(|(r, b)| (r, Reply::from(b)))
        .collect()
}

fn worker_loop(
    list: &Gfsl,
    injector: &Injector,
    done: mpsc::Sender<DoneItem>,
    op_stats: &std::sync::Mutex<gfsl::OpStats>,
) {
    let mut h = list.handle();
    // When the structure's hint cache or multi-level finger is on, execute
    // each batch in key order so consecutive ops validate the cached path
    // (replies stay index-aligned either way).
    let hinted = list.params().hinted_dispatch();
    let mut chaos_stats = gfsl::OpStats::new();
    while let Some(item) = injector.pop() {
        let replies = match item.probe {
            None => exec_batch(&mut h, item.reqs, hinted),
            Some(p) => {
                // A fresh chaos handle per batch; dropping it retires the
                // wave participant *before* the done message is sent, so
                // the wave's trace hash is final once all batches report.
                let mut ch = list.handle_with(p);
                let replies = exec_batch(&mut ch, item.reqs, hinted);
                chaos_stats.merge(&ch.stats());
                replies
            }
        };
        let reply = DoneItem {
            seq: item.seq,
            epoch: item.epoch,
            replies,
        };
        if done.send(reply).is_err() {
            break;
        }
    }
    chaos_stats.merge(&h.stats());
    op_stats.lock().unwrap().merge(&chaos_stats);
}

/// Admit every arrival at or before `limit_ns`, shedding on overflow and —
/// when the supervisor has degraded the service — by the current mode's
/// admission rule.
fn admit_upto(
    src: &mut dyn RequestSource,
    intake: &mut IntakeQueue,
    trace: &mut TraceHash,
    limit_ns: u64,
    mode: ServiceMode,
    metrics: &mut ServiceMetrics,
) {
    while let Some(t) = src.peek_ns() {
        if t > limit_ns {
            break;
        }
        let req = src.take();
        if !mode.admits(req.op, intake.len(), intake.capacity()) {
            let shed = intake.shed_error();
            intake.note_shed();
            metrics.degraded_sheds += 1;
            trace.shed(req.client as u64, shed.depth as u64);
            src.on_shed(req, t);
            continue;
        }
        if let Err((req, shed)) = intake.offer(req) {
            trace.shed(req.client as u64, shed.depth as u64);
            src.on_shed(req, t);
        }
    }
}

/// Extract the epoch's effective write effects in dispatch (batch-seq)
/// order: the records a durability sink must persist before any of the
/// epoch's responses may route. Only *effective* writes are logged — an
/// `Inserted(false)` / `Deleted(false)` changed nothing and replays to
/// nothing; failed ops changed nothing by definition.
///
/// `done` must already be sorted by batch seq. Within one epoch, batches on
/// different workers interleave nondeterministically, so seq order is *a*
/// valid serialization of the epoch's concurrent writes rather than the
/// exact memory order — any client that saw both orders saw two concurrent
/// ops, so replaying seq order stays linearizable (see DESIGN.md §15).
fn write_effects(done: &[DoneItem]) -> Vec<WriteEffect> {
    let mut effects = Vec::new();
    for d in done {
        for (req, reply) in &d.replies {
            match (req.op, reply) {
                (ServeOp::Insert(k, v), Reply::Inserted(true)) => {
                    effects.push(WriteEffect { key: k, value: Some(v) });
                }
                (ServeOp::Delete(k), Reply::Deleted(true)) => {
                    effects.push(WriteEffect { key: k, value: None });
                }
                (ServeOp::PopMin, Reply::Popped(Some((k, _)))) => {
                    // An extract-min replays as the removal of the key it
                    // popped — position-independent, like any delete.
                    effects.push(WriteEffect { key: *k, value: None });
                }
                _ => {}
            }
        }
    }
    effects
}

/// Group-commit one epoch's write effects into the sink (when one is
/// installed). Must run before [`route_done`]: routing *is* the ack, and
/// the durability contract says nothing routes until the WAL says so. A
/// sink error is fatal by design — acknowledging a write the log cannot
/// hold would be silent data loss, the one failure mode this tier exists
/// to rule out.
fn commit_epoch(
    sink: &mut Option<&mut dyn CommitSink>,
    done: &mut [DoneItem],
    metrics: &mut ServiceMetrics,
) {
    let Some(sink) = sink.as_mut() else { return };
    done.sort_by_key(|d| d.seq);
    let effects = write_effects(done);
    if effects.is_empty() {
        return;
    }
    sink.commit(&effects)
        .expect("durability sink failed: refusing to acknowledge non-durable writes");
    metrics.durable_commits += 1;
    metrics.durable_records += effects.len() as u64;
}

/// Deliver one collected epoch: count, timestamp, histogram, route through
/// per-client FIFO queues, and feed completions back to the source (which
/// is what lets closed-loop clients schedule their next issue).
fn route_done(
    mut done: Vec<DoneItem>,
    dispatch_t: u64,
    clock: u64,
    metrics: &mut ServiceMetrics,
    queues: &mut ClientQueues,
    src: &mut dyn RequestSource,
) {
    // Batches complete out of order; restore dispatch order first.
    done.sort_by_key(|d| d.seq);
    for d in done {
        for (req, reply) in d.replies {
            if let Reply::Failed(e) = &reply {
                metrics.failed += 1;
                if matches!(e, gfsl::Error::Aborted(_)) {
                    metrics.aborts += 1;
                }
            }
            match req.op {
                ServeOp::Get(_) => metrics.gets += 1,
                ServeOp::Insert(..) => metrics.inserts += 1,
                ServeOp::Delete(_) => metrics.deletes += 1,
                ServeOp::Range(..) => metrics.ranges += 1,
                ServeOp::MinEntry => metrics.min_peeks += 1,
                ServeOp::PopMin => metrics.pops += 1,
            }
            metrics.ops += 1;
            let (client, id) = (req.client, req.id);
            let resp = Response {
                client,
                id,
                arrival_ns: req.arrival_ns,
                wait_ns: dispatch_t.saturating_sub(req.arrival_ns),
                done_ns: clock,
                reply,
            };
            metrics.latency.record(resp.latency_ns());
            // Through the client's completion queue: within one epoch a
            // client's responses already arrive in dispatch order, so the
            // queue drains immediately and FIFO delivery is preserved.
            queues.push(resp);
            let resp = queues.pop(client).expect("routed response missing");
            debug_assert_eq!(resp.id, id, "per-client FIFO order broken");
            src.on_complete(&resp);
        }
    }
}

/// Collect a pipelined epoch: receive its batches, advance the virtual
/// clock by its service time, and route the responses.
#[allow(clippy::too_many_arguments)]
fn collect_epoch(
    p: InFlight,
    exec: ExecMode,
    done_rx: &mpsc::Receiver<DoneItem>,
    early: &mut Vec<DoneItem>,
    clock: &mut u64,
    metrics: &mut ServiceMetrics,
    queues: &mut ClientQueues,
    src: &mut dyn RequestSource,
    sink: &mut Option<&mut dyn CommitSink>,
) {
    // The next epoch's batches are already executing; its completions can
    // land on the shared channel interleaved with this epoch's. Claim
    // buffered strays first, park foreign ones.
    let mut done: Vec<DoneItem> = Vec::with_capacity(p.n);
    let mut i = 0;
    while i < early.len() {
        if early[i].epoch == p.epoch {
            done.push(early.swap_remove(i));
        } else {
            i += 1;
        }
    }
    while done.len() < p.n {
        let d = done_rx.recv().expect("worker thread died");
        if d.epoch == p.epoch {
            done.push(d);
        } else {
            early.push(d);
        }
    }
    let exec_elapsed = p.exec_t0.elapsed();
    metrics.exec_wall_s += exec_elapsed.as_secs_f64();
    let advance = match exec {
        ExecMode::Measured => exec_elapsed.as_nanos() as u64,
        ExecMode::Modeled { ns_per_op } | ExecMode::Chaos { ns_per_op, .. } => {
            ns_per_op.saturating_mul(p.per_worker_max)
        }
    };
    *clock = clock.saturating_add(advance.max(1));
    commit_epoch(sink, &mut done, metrics);
    route_done(done, p.dispatch_t, *clock, metrics, queues, src);
}

/// Run the service to completion: pull every request the source will ever
/// yield through admission, batching, dispatch, and completion routing.
pub fn serve(
    list: &Gfsl,
    cfg: &ServeConfig,
    policy: &mut dyn BatchPolicy,
    src: &mut dyn RequestSource,
) -> ServiceReport {
    serve_inner(list, cfg, policy, src, None, None)
}

/// [`serve`], with every acknowledgement gated on a durability sink: each
/// epoch's effective writes are group-committed through `sink` *before*
/// the epoch's responses route. The sink's contract (see
/// [`crate::durability::DurabilityContract`]) decides what an ack then
/// means — fsync-durable, fdatasync-durable, or page-cache-buffered.
pub fn serve_durable(
    list: &Gfsl,
    cfg: &ServeConfig,
    policy: &mut dyn BatchPolicy,
    src: &mut dyn RequestSource,
    sink: &mut dyn CommitSink,
) -> ServiceReport {
    serve_inner(list, cfg, policy, src, Some(sink), None)
}

/// [`serve`], with a caller-owned [`Supervisor`] — the way to install a
/// drain-completion hook ([`Supervisor::on_drain_quiesced`]) or custom
/// escalation windows, and to inspect the ladder after the run.
pub fn serve_supervised(
    list: &Gfsl,
    cfg: &ServeConfig,
    policy: &mut dyn BatchPolicy,
    src: &mut dyn RequestSource,
    sup: &mut Supervisor,
) -> ServiceReport {
    serve_inner(list, cfg, policy, src, None, Some(sup))
}

/// [`serve_durable`] and [`serve_supervised`] combined: durability-gated
/// acks plus a caller-owned supervisor, the full shutdown shape (drain →
/// quiesce → final checkpoint from the drain hook).
pub fn serve_durable_supervised(
    list: &Gfsl,
    cfg: &ServeConfig,
    policy: &mut dyn BatchPolicy,
    src: &mut dyn RequestSource,
    sink: &mut dyn CommitSink,
    sup: &mut Supervisor,
) -> ServiceReport {
    serve_inner(list, cfg, policy, src, Some(sink), Some(sup))
}

fn serve_inner(
    list: &Gfsl,
    cfg: &ServeConfig,
    policy: &mut dyn BatchPolicy,
    src: &mut dyn RequestSource,
    mut sink: Option<&mut dyn CommitSink>,
    sup: Option<&mut Supervisor>,
) -> ServiceReport {
    cfg.validate();
    let run_t0 = Instant::now();
    let lanes = list.params().lanes();
    let ctx = PolicyCtx {
        workers: cfg.workers,
        max_batch: cfg.max_batch,
        lane_align: lanes,
    };
    // Drain-rate estimate behind shed retry-after hints: the modeled (or
    // chaos) per-op cost when there is one, else the epoch deadline
    // amortized over a full size-triggered epoch.
    let drain_ns_per_req = match cfg.exec {
        ExecMode::Modeled { ns_per_op } | ExecMode::Chaos { ns_per_op, .. } => ns_per_op,
        ExecMode::Measured => cfg.epoch_ns / cfg.batch_ops.max(1) as u64,
    };
    let mut intake = IntakeQueue::with_drain_hint(cfg.intake_cap, drain_ns_per_req);
    let mut metrics = ServiceMetrics::default();
    let mut trace = TraceHash::new();
    let mut queues = ClientQueues::new();
    let injector = Injector::new();
    let (done_tx, done_rx) = mpsc::channel::<DoneItem>();
    let op_stats = std::sync::Mutex::new(gfsl::OpStats::new());

    let mut clock: u64 = 0;
    let mut epoch_seq: u64 = 0;
    let mut batch_seq: u64 = 0;

    std::thread::scope(|s| {
        for _ in 0..cfg.workers {
            let tx = done_tx.clone();
            let inj = &injector;
            let st = &op_stats;
            s.spawn(move || worker_loop(list, inj, tx, st));
        }
        drop(done_tx);

        let mut pending: Option<InFlight> = None;
        let mut early: Vec<DoneItem> = Vec::new();

        // Self-healing plumbing (active only with the structure in
        // containment mode): a maintenance handle repairs quarantined
        // chunks and advances the background scrubber each driver pass,
        // and the supervisor walks the degradation ladder on the observed
        // abort / quarantine signals.
        let contain = list.params().contain;
        let mut maint = list.handle();
        let mut own_sup = Supervisor::default();
        let sup: &mut Supervisor = match sup {
            Some(s) => s,
            None => &mut own_sup,
        };
        let mut mode = sup.mode();
        let mut last_aborts = 0u64;
        let mut last_repairs = 0u64;
        let repairs_base = {
            let s = list.repair_stats();
            s.repaired_forward + s.repaired_back + s.unpoisoned_clean
        };

        loop {
            if contain {
                let depth = list.quarantine_depth();
                metrics.quarantine_depth_max = metrics.quarantine_depth_max.max(depth as u64);
                if depth > 0 {
                    maint.repair_quarantine();
                }
                maint.scrub_step(SCRUB_BUDGET_PER_EPOCH);
                let s = list.repair_stats();
                metrics.repairs = (s.repaired_forward + s.repaired_back + s.unpoisoned_clean)
                    .saturating_sub(repairs_base);
                let faults_delta = (metrics.aborts - last_aborts)
                    + (metrics.repairs - last_repairs);
                last_aborts = metrics.aborts;
                last_repairs = metrics.repairs;
                // The depth fed to the supervisor is *post-repair*: staying
                // positive means repair is not keeping up, which is what
                // should climb the ladder past shed-writes. Repair activity
                // itself still counts as a fault for this epoch.
                let next = sup.observe(clock, faults_delta, list.quarantine_depth());
                if next != mode {
                    mode = next;
                    trace.mode(clock, u64::from(mode.severity()));
                }
            }

            // Arrivals during the previous epoch's execution have already
            // happened — they contend for intake space now, or are shed.
            admit_upto(src, &mut intake, &mut trace, clock, mode, &mut metrics);

            // Drain quiescence: nothing queued and nothing in flight means
            // the ladder's terminal rung has finished draining — latch it
            // and fire the shutdown hook (final checkpoint, test barriers).
            if mode == ServiceMode::Drain && intake.is_empty() && pending.is_none() {
                sup.notify_drain_quiesced(clock);
            }

            if intake.is_empty() {
                if let Some(p) = pending.take() {
                    // Nothing to form yet; drain the pipeline so the
                    // completions can seed the next arrivals.
                    collect_epoch(
                        p, cfg.exec, &done_rx, &mut early, &mut clock, &mut metrics,
                        &mut queues, src, &mut sink,
                    );
                    continue;
                }
                match src.peek_ns() {
                    Some(t) => {
                        // Idle: jump the clock to the next arrival.
                        clock = clock.max(t);
                        admit_upto(src, &mut intake, &mut trace, clock, mode, &mut metrics);
                    }
                    None => break,
                }
            }

            // Formation window: close at the deadline, or early once the
            // size trigger is reached.
            let deadline = clock.saturating_add(cfg.epoch_ns);
            let mut close = deadline;
            if intake.len() >= cfg.batch_ops {
                close = clock;
            } else {
                while let Some(t) = src.peek_ns() {
                    if t > deadline {
                        break;
                    }
                    let req = src.take();
                    if !mode.admits(req.op, intake.len(), intake.capacity()) {
                        let shed = intake.shed_error();
                        intake.note_shed();
                        metrics.degraded_sheds += 1;
                        trace.shed(req.client as u64, shed.depth as u64);
                        src.on_shed(req, t);
                        continue;
                    }
                    match intake.offer(req) {
                        Ok(()) => {
                            if intake.len() >= cfg.batch_ops {
                                close = t.max(clock);
                                break;
                            }
                        }
                        Err((req, shed)) => {
                            trace.shed(req.client as u64, shed.depth as u64);
                            src.on_shed(req, t);
                        }
                    }
                }
            }
            clock = clock.max(close);
            if intake.is_empty() {
                // Deadline passed with nothing admitted; re-enter the idle
                // skip with the advanced clock.
                continue;
            }

            // Close the epoch: sample depth, drain, form batches.
            metrics.epochs += 1;
            metrics.sample_queue_depth(intake.len());
            let epoch_reqs = intake.drain_upto(cfg.batch_ops);
            trace.epoch(epoch_seq, clock, epoch_reqs.len());
            epoch_seq += 1;
            let dispatch_t = clock;
            for r in &epoch_reqs {
                metrics.wait.record(dispatch_t.saturating_sub(r.arrival_ns));
            }

            let mut batches = policy.form(epoch_reqs, &ctx);
            let mut per_worker = vec![0u64; cfg.workers];
            for b in &mut batches {
                b.seq = batch_seq;
                batch_seq += 1;
                trace.batch(b.seq, b.worker, b.reqs.len(), b.read_only);
                metrics.record_batch(b.reqs.len(), b.aligned_len(lanes), b.read_only);
                per_worker[b.worker % cfg.workers] += b.reqs.len() as u64;
            }

            // Dispatch. Measured/Modeled: push this epoch's batches *before*
            // collecting the one in flight, so the workers execute epoch
            // N+1 while the driver routes epoch N's responses and admits
            // the arrivals they trigger. Chaos: strictly synchronous —
            // every wave participant must be live on a worker, so no batch
            // may queue behind an earlier epoch.
            match cfg.exec {
                ExecMode::Measured | ExecMode::Modeled { .. } => {
                    let fresh = InFlight {
                        n: batches.len(),
                        epoch: epoch_seq - 1,
                        dispatch_t,
                        per_worker_max: per_worker.iter().copied().max().unwrap_or(0),
                        exec_t0: Instant::now(),
                    };
                    for b in batches {
                        trace.grant(b.seq);
                        injector.push(WorkItem {
                            seq: b.seq,
                            epoch: fresh.epoch,
                            reqs: b.reqs,
                            probe: None,
                        });
                    }
                    if let Some(p) = pending.take() {
                        collect_epoch(
                            p, cfg.exec, &done_rx, &mut early, &mut clock, &mut metrics,
                            &mut queues, src, &mut sink,
                        );
                    }
                    pending = Some(fresh);
                }
                ExecMode::Chaos { max_stall_turns, .. } => {
                    debug_assert!(pending.is_none(), "chaos epochs never pipeline");
                    let exec_t0 = Instant::now();
                    let mut done: Vec<DoneItem> = Vec::new();
                    let mut wave_no = 0u64;
                    let mut iter = batches.into_iter().peekable();
                    while iter.peek().is_some() {
                        let wave: Vec<Batch> = iter.by_ref().take(cfg.workers).collect();
                        let opts = ChaosOptions {
                            seed: cfg.seed
                                ^ epoch_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ wave_no.wrapping_mul(0xBF58_476D_1CE4_E5B9),
                            max_stall_turns,
                            ..ChaosOptions::default()
                        };
                        let ctl = ChaosController::new(wave.len(), opts);
                        let n = wave.len();
                        for (i, b) in wave.into_iter().enumerate() {
                            trace.grant(b.seq);
                            injector.push(WorkItem {
                                seq: b.seq,
                                epoch: epoch_seq - 1,
                                reqs: b.reqs,
                                probe: Some(ctl.probe(i)),
                            });
                        }
                        for _ in 0..n {
                            done.push(done_rx.recv().expect("worker thread died"));
                        }
                        trace.chaos(ctl.trace_hash());
                        wave_no += 1;
                    }
                    metrics.exec_wall_s += exec_t0.elapsed().as_secs_f64();
                    let advance = match cfg.exec {
                        ExecMode::Chaos { ns_per_op, .. } => {
                            ns_per_op.saturating_mul(per_worker.iter().copied().max().unwrap_or(0))
                        }
                        _ => unreachable!(),
                    };
                    clock = clock.saturating_add(advance.max(1));
                    commit_epoch(&mut sink, &mut done, &mut metrics);
                    route_done(done, dispatch_t, clock, &mut metrics, &mut queues, src);
                }
            }
        }

        if let Some(p) = pending.take() {
            collect_epoch(
                p, cfg.exec, &done_rx, &mut early, &mut clock, &mut metrics, &mut queues, src,
                &mut sink,
            );
        }
        if mode == ServiceMode::Drain {
            // The loop can exhaust its source in the same pass that drained
            // the pipeline; report the terminal quiescence it never looped
            // back to observe.
            sup.notify_drain_quiesced(clock);
        }
        debug_assert!(early.is_empty(), "stray completions after drain");
        injector.close();
        metrics.mode_transitions = sup.transitions;
        metrics.time_to_heal_ns = sup.time_to_heal_ns;
        metrics.clock_end_ns = clock;
    });

    metrics.sheds = intake.sheds();
    metrics.run_wall_s = run_t0.elapsed().as_secs_f64();
    // Workers have joined (scope end): fold their structure-level locality
    // counters into the service report.
    metrics.absorb_op_stats(&op_stats.into_inner().unwrap());
    metrics.absorb_mvcc_stats(list.mvcc_stats());
    ServiceReport {
        policy: policy.name(),
        metrics,
        trace_hash: trace.value(),
    }
}

/// Execute `ops` slab-split across `workers` plain handles and return the
/// wall-clock throughput in Mops/s — the harness's saturating batch-mode
/// loop, used as the denominator for service-efficiency ratios.
pub fn raw_batch_mops(list: &Gfsl, ops: &[ServeOp], workers: usize) -> f64 {
    assert!(workers > 0 && !ops.is_empty());
    let slab = ops.len().div_ceil(workers);
    let hinted = list.params().hinted_dispatch();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for chunk in ops.chunks(slab) {
            s.spawn(move || {
                let mut h = list.handle();
                let batch: Vec<BatchOp> = chunk.iter().map(|&o| to_batch_op(o)).collect();
                let mut out = Vec::with_capacity(batch.len());
                if hinted {
                    h.execute_batch_hinted(&batch, &mut out);
                } else {
                    h.execute_batch(&batch, &mut out);
                }
            });
        }
    });
    ops.len() as f64 / t0.elapsed().as_secs_f64() / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Fifo;
    use crate::source::ClosedSource;
    use gfsl::{GfslParams, TeamSize};
    use gfsl_workload::{ClosedLoop, ServeMix};

    fn small_list() -> Gfsl {
        let params = GfslParams {
            team_size: TeamSize::Sixteen,
            pool_chunks: 1 << 12,
            ..Default::default()
        };
        Gfsl::prefilled(params, (1..=2_000u32).filter(|k| k % 2 == 0)).unwrap()
    }

    fn modeled_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            epoch_ns: 10_000,
            batch_ops: 64,
            max_batch: 32,
            intake_cap: 256,
            seed: 7,
            exec: ExecMode::Modeled { ns_per_op: 100 },
        }
    }

    fn run_once(seed: u64) -> ServiceReport {
        let list = small_list();
        let pop = ClosedLoop::new(16, 50, 1_000, ServeMix::C80, 2_000, seed);
        let mut src = ClosedSource::new(pop, 1_000);
        serve(&list, &modeled_cfg(), &mut Fifo::default(), &mut src)
    }

    #[test]
    fn modeled_run_completes_every_request() {
        let report = run_once(42);
        assert_eq!(report.metrics.ops, 16 * 50);
        assert_eq!(report.metrics.sheds, 0, "low load must not shed");
        assert_eq!(report.metrics.failed, 0);
        assert!(report.metrics.epochs > 0 && report.metrics.batches > 0);
        assert!(report.metrics.latency.count() == 16 * 50);
        assert!(report.metrics.latency.p50_ns() > 0);
        assert!(report.metrics.mean_occupancy() > 0.0);
        assert_eq!(report.policy, "fifo");
    }

    #[test]
    fn modeled_runs_replay_bit_for_bit() {
        let a = run_once(42);
        let b = run_once(42);
        assert_eq!(a.trace_hash, b.trace_hash, "same seed, same schedule");
        assert_eq!(a.metrics.ops, b.metrics.ops);
        assert_eq!(a.metrics.epochs, b.metrics.epochs);
        assert_eq!(a.metrics.batches, b.metrics.batches);
        let c = run_once(43);
        assert_ne!(a.trace_hash, c.trace_hash, "different seed, different schedule");
    }

    #[test]
    fn hinted_key_sorted_run_completes_and_replays() {
        let run = |seed: u64| {
            let params = GfslParams {
                team_size: TeamSize::Sixteen,
                pool_chunks: 1 << 12,
                hints: true,
                ..Default::default()
            };
            let list = Gfsl::prefilled(params, (1..=2_000u32).filter(|k| k % 2 == 0)).unwrap();
            let pop = ClosedLoop::new(16, 50, 1_000, ServeMix::C80, 2_000, seed);
            let mut src = ClosedSource::new(pop, 1_000);
            let report = serve(
                &list,
                &modeled_cfg(),
                &mut crate::scheduler::KeySorted::default(),
                &mut src,
            );
            list.assert_valid();
            report
        };
        let a = run(42);
        assert_eq!(a.metrics.ops, 16 * 50);
        assert_eq!(a.metrics.failed, 0);
        assert_eq!(a.policy, "key-sorted");
        let b = run(42);
        assert_eq!(a.trace_hash, b.trace_hash, "hinted runs replay bit-for-bit");
    }

    #[test]
    fn durable_serve_commits_every_effective_write_before_ack() {
        use crate::durability::MemorySink;

        let list = small_list();
        let pop = ClosedLoop::new(16, 50, 1_000, ServeMix::C80, 2_000, 42);
        let mut src = ClosedSource::new(pop, 1_000);
        let mut sink = MemorySink::default();
        let report = serve_durable(&list, &modeled_cfg(), &mut Fifo::default(), &mut src, &mut sink);

        let m = &report.metrics;
        assert_eq!(m.ops, 16 * 50);
        assert_eq!(m.durable_records, sink.effects.len() as u64);
        assert_eq!(m.durable_commits, sink.commits);
        assert!(m.durable_commits <= m.epochs, "at most one group commit per epoch");
        // Every committed record corresponds to an effective write the
        // structure performed; the structure must agree with the log.
        let mut inserted = 0u64;
        let mut deleted = 0u64;
        for e in &sink.effects {
            match e.value {
                Some(_) => inserted += 1,
                None => deleted += 1,
            }
        }
        assert!(inserted + deleted > 0, "C80 mix must produce effective writes");
        assert!(inserted <= m.inserts && deleted <= m.deletes);
        list.assert_valid();
    }

    #[test]
    fn durable_modeled_runs_replay_with_identical_logs() {
        use crate::durability::MemorySink;

        let run = || {
            let list = small_list();
            let pop = ClosedLoop::new(16, 50, 1_000, ServeMix::C80, 2_000, 42);
            let mut src = ClosedSource::new(pop, 1_000);
            let mut sink = MemorySink::default();
            let report =
                serve_durable(&list, &modeled_cfg(), &mut Fifo::default(), &mut src, &mut sink);
            (report, sink.effects)
        };
        let (a, ea) = run();
        let (b, eb) = run();
        assert_eq!(a.trace_hash, b.trace_hash, "sink must not perturb the schedule");
        assert_eq!(ea, eb, "same seed, same WAL effect stream");
    }

    #[test]
    fn raw_batch_mops_executes_all_ops() {
        let list = small_list();
        let ops = ServeMix::C80.stream(5, 2_000, 4_000);
        let mops = raw_batch_mops(&list, &ops, 2);
        assert!(mops > 0.0);
        list.assert_valid();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let mut cfg = modeled_cfg();
        cfg.workers = 0;
        cfg.validate();
    }

    #[test]
    fn service_heals_through_a_precrashed_structure() {
        use gfsl::chaos::{ChaosController, ChaosOptions};
        use gfsl::{AbortReason, CrashPoint, Error};

        let params = GfslParams {
            team_size: TeamSize::Sixteen,
            pool_chunks: 1 << 12,
            contain: true,
            ..Default::default()
        };
        let list = Gfsl::prefilled(params, (1..=2_000u32).filter(|k| k % 2 == 0)).unwrap();

        // Crash one op deterministically before serving: the mid-split
        // victim leaves its held chunks quarantined (still lock-held), the
        // exact state the service must route around and repair online.
        let ctl = ChaosController::new(
            1,
            ChaosOptions {
                panic_at: Some((CrashPoint::SplitPublish, 1)),
                max_stall_turns: 0,
                ..Default::default()
            },
        );
        {
            let mut h = list.handle_with(ctl.probe(0));
            let mut crashed = false;
            for k in 0..200u32 {
                match h.try_insert(2 * k + 1, 7) {
                    Ok(_) => {}
                    Err(Error::Aborted(a)) => {
                        assert_eq!(a.reason, AbortReason::Crashed);
                        crashed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            assert!(crashed, "the injected crash must fire before serving");
        }
        assert!(list.quarantine_depth() > 0, "crash leaves a quarantine");

        let pop = ClosedLoop::new(16, 50, 1_000, ServeMix::C80, 2_000, 42);
        let mut src = ClosedSource::new(pop, 1_000);
        let report = serve(&list, &modeled_cfg(), &mut Fifo::default(), &mut src);

        let m = &report.metrics;
        assert_eq!(list.quarantine_depth(), 0, "service repaired the quarantine");
        assert!(m.repairs >= 1, "repair pass handled the crashed op's chunks");
        assert!(m.quarantine_depth_max >= 1, "degradation signal was observed");
        assert!(
            m.mode_transitions >= 2,
            "supervisor must degrade and return to normal (saw {})",
            m.mode_transitions
        );
        assert!(m.time_to_heal_ns > 0, "completed heal reports its duration");
        list.assert_valid();
        // Requests the service acknowledged as applied must be in effect.
        assert!(m.ops > 0);
    }

    #[test]
    fn contained_modeled_runs_still_replay_bit_for_bit() {
        let run = || {
            let params = GfslParams {
                team_size: TeamSize::Sixteen,
                pool_chunks: 1 << 12,
                contain: true,
                ..Default::default()
            };
            let list = Gfsl::prefilled(params, (1..=2_000u32).filter(|k| k % 2 == 0)).unwrap();
            let pop = ClosedLoop::new(16, 50, 1_000, ServeMix::C80, 2_000, 42);
            let mut src = ClosedSource::new(pop, 1_000);
            let report = serve(&list, &modeled_cfg(), &mut Fifo::default(), &mut src);
            list.assert_valid();
            report
        };
        let a = run();
        let b = run();
        assert_eq!(a.trace_hash, b.trace_hash, "containment must not break replay");
        assert_eq!(a.metrics.ops, 16 * 50);
        assert_eq!(a.metrics.mode_transitions, 0, "healthy run never degrades");
        assert_eq!(a.metrics.repairs, 0);
    }
}
