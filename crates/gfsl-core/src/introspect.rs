//! Structure introspection: per-level shape, fill distribution, zombie
//! accounting. Quiescent-only, like the other whole-structure scans.
//!
//! These statistics drive capacity planning (pool sizing), verify the
//! paper's structural claims (e.g. "chunks hold an average of ~20 keys" for
//! 32-entry chunks, the ~`DSIZE/2 + threshold` steady-state fill under
//! churn), and power the compaction heuristics.

use gfsl_gpu_mem::NoProbe;

use crate::chunk::{KEY_NEG_INF, NIL};
use crate::skiplist::Gfsl;

/// Shape of one level's chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelShape {
    /// Level index (0 = bottom).
    pub level: usize,
    /// Non-zombie chunks reachable in the chain.
    pub live_chunks: u32,
    /// Zombie chunks still linked into the chain.
    pub zombie_chunks: u32,
    /// Keys in live chunks (excluding `-∞`).
    pub keys: u64,
    /// Histogram of live-entry counts per live chunk: `fill_histogram[i]` =
    /// chunks holding exactly `i` live entries.
    pub fill_histogram: Vec<u32>,
}

impl LevelShape {
    /// Mean live entries per live chunk.
    pub fn mean_fill(&self) -> f64 {
        if self.live_chunks == 0 {
            0.0
        } else {
            let total: u64 = self
                .fill_histogram
                .iter()
                .enumerate()
                .map(|(fill, &n)| fill as u64 * n as u64)
                .sum();
            total as f64 / self.live_chunks as f64
        }
    }
}

/// Whole-structure snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape {
    /// Per-level shapes, bottom first, only levels that hold keys (plus
    /// level 0 always).
    pub levels: Vec<LevelShape>,
    /// Total chunks handed out by the pool's bump pointer (including
    /// zombies and sentinels). With reclamation on this is the pool
    /// *high-water mark*: recycled chunks are re-issued from the free list
    /// without bumping it.
    pub chunks_allocated: u32,
    /// Reclamation progress counters (`None` when reclamation is off):
    /// epochs advanced, chunks retired/recycled/reused, and the current
    /// limbo/staged/free populations.
    pub reclaim: Option<gfsl_gpu_mem::ReclaimStats>,
}

impl Shape {
    /// Keys in the set.
    pub fn len(&self) -> u64 {
        self.levels.first().map(|l| l.keys).unwrap_or(0)
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of allocated chunks that are zombies (reclaimable by
    /// [`Gfsl::compacted`]).
    pub fn zombie_fraction(&self) -> f64 {
        let zombies: u32 = self.levels.iter().map(|l| l.zombie_chunks).sum();
        if self.chunks_allocated == 0 {
            0.0
        } else {
            zombies as f64 / self.chunks_allocated as f64
        }
    }

    /// Inter-level fan-out: keys at level 0 per key at level 1 (the paper
    /// ties this to chunk capacity via `p_chunk`; ~`DSIZE/2`..`DSIZE` for
    /// `p_chunk = 1`).
    pub fn fanout(&self) -> Option<f64> {
        let l0 = self.levels.first()?.keys;
        let l1 = self.levels.get(1)?.keys;
        if l1 == 0 {
            None
        } else {
            Some(l0 as f64 / l1 as f64)
        }
    }
}

impl Gfsl {
    /// Take a structural snapshot. Quiescent use only.
    pub fn shape(&self) -> Shape {
        let team = self.team;
        let mut h = self.handle_with(NoProbe);
        // Pinned so concurrent reclamation cannot recycle chunks out from
        // under the walk (the snapshot itself is still quiescent-only).
        h.with_pin(|h| {
        let mut levels = Vec::new();
        for level in 0..self.params.max_levels() {
            let mut shape = LevelShape {
                level,
                live_chunks: 0,
                zombie_chunks: 0,
                keys: 0,
                fill_histogram: vec![0; team.dsize() + 1],
            };
            let mut cur = self.head_of(level);
            loop {
                let v = h.read_chunk(cur);
                if v.is_zombie(&team) {
                    shape.zombie_chunks += 1;
                } else {
                    shape.live_chunks += 1;
                    let live = v
                        .live_entries(&team)
                        .filter(|(_, e)| e.key() != KEY_NEG_INF)
                        .count();
                    shape.keys += live as u64;
                    shape.fill_histogram[v.num_keys(&team) as usize] += 1;
                }
                let next = v.next(&team);
                if next == NIL {
                    break;
                }
                cur = next;
            }
            let empty_level = level > 0 && shape.keys == 0;
            levels.push(shape);
            if empty_level {
                break; // levels above an empty level are empty sentinels
            }
        }
        Shape {
            levels,
            chunks_allocated: self.chunks_allocated(),
            reclaim: self.reclaim_stats(),
        }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    fn list16() -> Gfsl {
        Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn empty_shape() {
        let list = list16();
        let s = list.shape();
        assert!(s.is_empty());
        assert_eq!(s.levels[0].live_chunks, 1, "the sentinel");
        assert_eq!(s.levels[0].zombie_chunks, 0);
        assert_eq!(s.zombie_fraction(), 0.0);
        assert_eq!(s.fanout(), None);
    }

    #[test]
    fn shape_counts_match_reality() {
        let list = list16();
        let mut h = list.handle();
        for k in 1..=1_000u32 {
            h.insert(k, k).unwrap();
        }
        let s = list.shape();
        assert_eq!(s.len(), 1_000);
        assert!(s.levels.len() >= 2, "index levels built");
        // Fan-out for p_chunk = 1 sits between half-fill and full-fill.
        let fanout = s.fanout().unwrap();
        assert!(
            (4.0..=16.0).contains(&fanout),
            "fanout {fanout} out of the DSIZE-tied band"
        );
        // Mean bottom fill is within the split/merge band.
        let fill = s.levels[0].mean_fill();
        assert!((6.0..=14.0).contains(&fill), "mean fill {fill}");
        // Histogram sums to chunk count.
        let total: u32 = s.levels[0].fill_histogram.iter().sum();
        assert_eq!(total, s.levels[0].live_chunks);
    }

    #[test]
    fn zombies_show_up_after_deletions() {
        let list = list16();
        {
            let mut h = list.handle();
            for k in 1..=2_000u32 {
                h.insert(k, k).unwrap();
            }
            for k in 1..=1_900u32 {
                h.remove(k);
            }
        }
        let s = list.shape();
        assert_eq!(s.len(), 100);
        assert!(s.zombie_fraction() > 0.0, "merges left zombies behind");
        // Compaction erases them.
        let mut list = list;
        let compacted = list.compacted().unwrap();
        assert_eq!(compacted.shape().zombie_fraction(), 0.0);
        assert_eq!(compacted.shape().len(), 100);
    }

    #[test]
    fn mean_fill_of_bulk_load_hits_target() {
        let list = Gfsl::from_sorted_pairs(
            GfslParams {
                team_size: TeamSize::Sixteen,
                ..Default::default()
            },
            (1..=10_000u32).map(|k| (k, k)),
        )
        .unwrap();
        let s = list.shape();
        let fill = s.levels[0].mean_fill();
        // Bulk load packs to ~3/4 of DSIZE = ~10.5 for 14-entry arrays.
        assert!((9.0..=11.5).contains(&fill), "bulk fill {fill}");
    }
}
