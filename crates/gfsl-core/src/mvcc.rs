//! Multiversion reads: snapshots and scans that never block on writer locks.
//!
//! The serving tier's consistency story so far ends at *instants*: a cluster
//! snapshot write-holds every shard fence for the whole export walk, so one
//! long scan stalls every writer. This module adopts the core idea of
//! *Jiffy* (PAPERS.md): version the structure so read-only snapshots and
//! large scans run against a consistent **past** version while writes
//! proceed.
//!
//! ## Protocol
//!
//! A [`MvccEngine`] owns a **version clock** behind an `RwLock<u64>` fence:
//!
//! * Every update operation (`insert`/`upsert`/`remove`) holds the fence
//!   **shared** for its duration and stamps itself with the clock value `s`
//!   it observed at entry ([`crate::skiplist::GfslHandle`]'s
//!   `with_version_stamp`).
//! * [`MvccEngine::pin`] takes the fence **exclusive**, mints a
//!   [`ReadTicket`] for the current version `v`, and bumps the clock. The
//!   exclusive acquisition drains every in-flight writer, so all stamp-≤`v`
//!   operations have completed before the ticket exists: version `v` is an
//!   *operation-quiescent* structure state (no mid-split, mid-merge, or
//!   mid-shift states are part of it).
//! * Before a stamped writer's **first mutation of a chunk in its stamp
//!   epoch**, the chunk's pre-image (all `N` lanes, read under the
//!   just-acquired chunk lock, exactly like the containment snapshots) is
//!   pushed onto that chunk's **version chain**, tagged `s`. A per-chunk
//!   `copy_epoch` word makes the capture once-per-epoch.
//!
//! A reader holding `ReadTicket(v)` resolves a chunk to *the chain image
//! with the smallest tag `> v`* — the state the chunk had before the first
//! post-`v` mutation, i.e. its state at `v`. If no such image exists it
//! reads the live chunk raw and **re-checks the chain**: a stamp-`> v`
//! writer pushes its pre-image *before* mutating, so a torn raw read racing
//! such a writer is always caught by the re-check, and the image wins.
//! Writers with stamp ≤ `v` finished before the ticket was minted, so the
//! only remaining concurrent mutations are the unstamped single-word
//! zombie-unlink swings of the reclamation sweeps, which never move keys
//! (see "blind spots" in DESIGN.md §19). Versioned reads therefore never
//! wait on a chunk lock: lock *holders* have already pushed their
//! pre-image, so the chain (or an untorn raw read) always answers.
//!
//! Versioned walks run along the **bottom level only**, starting from the
//! version-resolved level-0 head (the head chain records the pre-CAS head
//! on every level-0 head swing). The upper index levels are not versioned —
//! a current-index descent may land *right* of a key's `v`-enclosing chunk
//! (keys migrate rightward), and a rightward lateral walk can never get
//! back to it, so there is no sound descent accelerator; `get_at` is a
//! deliberate O(bottom-chunks) walk and the intended consumers are scans,
//! snapshots, and checkers.
//!
//! ## Retirement
//!
//! Images retire through the same epoch pipeline as zombie chunks: a vacuum
//! pass (run under the fence, so no ticket can be minted mid-pass) condemns
//! every image whose tag no active ticket precedes, hands the batch an
//! opaque token via [`EpochReclaimer::defer`], and drops the memory only
//! when [`EpochReclaimer::drain_deferred`] returns the token after two
//! epoch advances. Resolution clones the image under the chain mutex, so
//! dropping is memory-safe regardless — the grace period is defense in
//! depth and keeps the retirement story uniform with chunks.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gfsl_gpu_mem::reclaim::EpochReclaimer;
use gfsl_gpu_mem::schedule::{self, AccessKind, SYNTH_MVCC_FENCE};
use gfsl_gpu_mem::MemProbe;
use parking_lot::{Mutex, RwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

use crate::chunk::{is_user_key, ChunkView, KEY_INF, NIL};
use crate::skiplist::{Gfsl, GfslHandle};

/// Chain-map shard count (power of two). Pushes and resolves are short
/// critical sections with no pool (schedule-gated) accesses inside, so a
/// handful of shards suffices to keep writers off each other.
const CHAIN_SHARDS: usize = 16;

/// Live-image count above which a stamped writer runs an opportunistic
/// vacuum in its op epilogue (the periodic reclaim pass is the main
/// cadence; this bounds retention when captures outpace it). The sweep
/// lives on the *write* path on purpose: images only accumulate through
/// writer captures, and readers pinning a version must never pay a
/// chain sweep — that would put the retention bill back on the scan
/// tail the whole subsystem exists to flatten.
const VACUUM_HIGH_WATER: u64 = 4096;

/// One copy-on-write pre-image of a chunk, tagged with the stamp of the
/// operation whose first mutation it precedes.
#[derive(Debug)]
struct VersionImage {
    tag: u64,
    lanes: Box<[u64]>,
}

/// Counters describing the multiversion subsystem (surfaced through
/// [`Gfsl::mvcc_stats`] and the serve metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MvccStats {
    /// Current version-clock value (the stamp the next writer gets).
    pub clock: u64,
    /// Read tickets currently outstanding.
    pub active_tickets: u64,
    /// Oldest pinned version (`0` when no ticket is outstanding).
    pub oldest_pinned: u64,
    /// Version pre-images currently retained on chains.
    pub images: u64,
    /// Deepest single-chunk chain ever observed (the bounded-high-water
    /// gate of BENCH_mvcc asserts on this).
    pub chain_hwm: u64,
    /// Bytes currently held by chain images.
    pub copy_bytes: u64,
    /// Pre-images captured since construction.
    pub captures: u64,
    /// Images condemned by vacuum passes since construction.
    pub vacuumed: u64,
    /// Condemned image batches still waiting out the reclaimer grace.
    pub condemned_batches: u64,
    /// Entries on the level-0 head version chain.
    pub head_entries: u64,
    /// Read tickets minted since construction.
    pub pins: u64,
    /// Chunk resolutions served from a chain image (vs raw reads).
    pub image_resolves: u64,
}

/// A pinned read version: every versioned read through this ticket observes
/// the operation-quiescent structure state at [`Self::version`]. Dropping
/// the ticket releases the pin (images its version kept alive become
/// vacuumable).
pub struct ReadTicket<'a> {
    engine: &'a MvccEngine,
    version: u64,
}

impl ReadTicket<'_> {
    /// The pinned version.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl Drop for ReadTicket<'_> {
    fn drop(&mut self) {
        self.engine.release(self.version);
    }
}

impl std::fmt::Debug for ReadTicket<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ReadTicket").field(&self.version).finish()
    }
}

/// The multiversion engine: version clock, per-chunk version chains, head
/// chain, ticket registry, and retirement bookkeeping. One per [`Gfsl`]
/// when [`crate::GfslParams::mvcc`] is on.
pub struct MvccEngine {
    /// The version clock. Writers hold it shared (stamping with the value
    /// read at entry); `pin` holds it exclusive to mint a ticket and bump
    /// the clock, draining all in-flight writers.
    fence: RwLock<u64>,
    /// Lock-free mirror of the clock for paths that must not touch the
    /// fence (conservative tags, stats).
    clock: AtomicU64,
    chains: Box<[Mutex<HashMap<u32, Vec<VersionImage>>>]>,
    /// Per-chunk latest capture tag: a writer captures only when its stamp
    /// exceeds this (first mutation in its stamp epoch). Written under the
    /// chunk lock, so per-chunk updates are serialized.
    copy_epoch: Box<[AtomicU64]>,
    /// Level-0 head chain: `(tag, pre-swing head)` pushed before every
    /// level-0 head CAS.
    head0: Mutex<Vec<(u64, u32)>>,
    /// version → outstanding ticket count.
    tickets: Mutex<BTreeMap<u64, u32>>,
    /// Mirror of `tickets.len() sum`: the writer fast path (skip all
    /// capture bookkeeping when nobody is reading).
    tickets_active: AtomicU64,
    /// Mirror of the oldest pinned version (`0` = none).
    oldest: AtomicU64,
    /// Condemned image batches awaiting reclaimer grace, keyed by the
    /// opaque token handed to [`EpochReclaimer::defer`].
    condemned: Mutex<Vec<(u64, Vec<VersionImage>)>>,
    next_token: AtomicU64,
    images_live: AtomicU64,
    /// One-at-a-time guard for the opportunistic writer-epilogue vacuum:
    /// when retention is pin-bound the high water can stay exceeded for a
    /// while, and without the guard every finishing writer would sweep
    /// the chains back to back.
    vacuuming: AtomicBool,
    copy_bytes: AtomicU64,
    chain_hwm: AtomicU64,
    captures: AtomicU64,
    vacuumed: AtomicU64,
    pins: AtomicU64,
    image_resolves: AtomicU64,
}

impl MvccEngine {
    pub(crate) fn new(pool_chunks: u32) -> MvccEngine {
        MvccEngine {
            // Clock starts at 1 so stamp 0 unambiguously means "unstamped".
            fence: RwLock::new(1),
            clock: AtomicU64::new(1),
            chains: (0..CHAIN_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            copy_epoch: (0..pool_chunks)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            head0: Mutex::new(Vec::new()),
            tickets: Mutex::new(BTreeMap::new()),
            tickets_active: AtomicU64::new(0),
            oldest: AtomicU64::new(0),
            condemned: Mutex::new(Vec::new()),
            next_token: AtomicU64::new(1),
            images_live: AtomicU64::new(0),
            vacuuming: AtomicBool::new(false),
            copy_bytes: AtomicU64::new(0),
            chain_hwm: AtomicU64::new(0),
            captures: AtomicU64::new(0),
            vacuumed: AtomicU64::new(0),
            pins: AtomicU64::new(0),
            image_resolves: AtomicU64::new(0),
        }
    }

    /// Current clock value without touching the fence.
    #[inline]
    pub(crate) fn clock_now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Any read tickets outstanding? The writer fast path: when this is
    /// false, all capture bookkeeping is skipped (and it can only become
    /// true via `pin`, which drains the writer first).
    #[inline]
    pub(crate) fn has_tickets(&self) -> bool {
        self.tickets_active.load(Ordering::SeqCst) > 0
    }

    /// Acquire the fence shared (writer side). Under a scheduler hook every
    /// attempt is a yield point on [`SYNTH_MVCC_FENCE`], for the same
    /// reason as the flat engine's locks: the turnstile only grants turns
    /// when all live threads are parked, so blocking inside the OS lock
    /// would wedge it.
    pub(crate) fn writer_fence(&self) -> RwLockReadGuard<'_, u64> {
        if !schedule::hooked() {
            return self.fence.read();
        }
        loop {
            schedule::yield_point(AccessKind::Load, SYNTH_MVCC_FENCE);
            if let Some(g) = self.fence.try_read() {
                return g;
            }
            schedule::wait_hint(SYNTH_MVCC_FENCE);
        }
    }

    fn fence_write(&self) -> RwLockWriteGuard<'_, u64> {
        if !schedule::hooked() {
            return self.fence.write();
        }
        loop {
            schedule::yield_point(AccessKind::Rmw, SYNTH_MVCC_FENCE);
            if let Some(g) = self.fence.try_write() {
                return g;
            }
            schedule::wait_hint(SYNTH_MVCC_FENCE);
        }
    }

    /// Mint a read ticket for the current version and bump the clock. The
    /// exclusive fence acquisition drains every in-flight stamped writer,
    /// so the pinned version is operation-quiescent.
    pub(crate) fn pin(&self) -> ReadTicket<'_> {
        let mut g = self.fence_write();
        let v = *g;
        *g += 1;
        self.clock.store(*g, Ordering::SeqCst);
        {
            let mut t = self.tickets.lock();
            *t.entry(v).or_insert(0) += 1;
            self.oldest
                .store(t.keys().next().copied().unwrap_or(0), Ordering::SeqCst);
        }
        self.tickets_active.fetch_add(1, Ordering::SeqCst);
        self.pins.fetch_add(1, Ordering::Relaxed);
        drop(g);
        ReadTicket {
            engine: self,
            version: v,
        }
    }

    fn release(&self, v: u64) {
        let mut t = self.tickets.lock();
        match t.get_mut(&v) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                t.remove(&v);
            }
            None => debug_assert!(false, "releasing unknown ticket version {v}"),
        }
        self.oldest
            .store(t.keys().next().copied().unwrap_or(0), Ordering::SeqCst);
        drop(t);
        self.tickets_active.fetch_sub(1, Ordering::SeqCst);
    }

    #[inline]
    fn shard_of(&self, ch: u32) -> &Mutex<HashMap<u32, Vec<VersionImage>>> {
        &self.chains[ch as usize & (CHAIN_SHARDS - 1)]
    }

    /// Latest capture/creation tag recorded for chunk `ch`: the cheap
    /// pre-filter for versioned reads. Capture bumps this *before* pushing
    /// the image, and pushes *before* the first mutation, so `epoch <= v`
    /// proves the chain holds no image tagged `> v` and the raw chunk
    /// words are the version-`v` truth — one atomic load instead of a
    /// chain-shard mutex round trip per chunk per scan.
    #[inline]
    pub(crate) fn chunk_epoch(&self, ch: u32) -> u64 {
        self.copy_epoch[ch as usize].load(Ordering::SeqCst)
    }

    /// Does the writer stamped `stamp` owe chunk `ch` a pre-image capture?
    /// (First mutation of the chunk in this stamp epoch, with readers
    /// outstanding.)
    #[inline]
    pub(crate) fn wants_capture(&self, ch: u32, stamp: u64) -> bool {
        self.has_tickets() && self.copy_epoch[ch as usize].load(Ordering::SeqCst) < stamp
    }

    /// Push `lanes` (read under the chunk lock, before any mutation) onto
    /// `ch`'s version chain, tagged `tag`. The `copy_epoch` max keeps the
    /// capture once-per-epoch; callers hold the chunk lock, so per-chunk
    /// captures are serialized and tags are unique within a chain.
    ///
    /// No pool (schedule-gated) access happens inside the chain mutex.
    pub(crate) fn capture(&self, ch: u32, tag: u64, lanes: Vec<u64>) {
        let prev = self.copy_epoch[ch as usize].fetch_max(tag, Ordering::SeqCst);
        if prev >= tag {
            return;
        }
        let bytes = lanes.len() as u64 * 8;
        let depth;
        {
            let mut shard = self.shard_of(ch).lock();
            let chain = shard.entry(ch).or_default();
            chain.push(VersionImage {
                tag,
                lanes: lanes.into_boxed_slice(),
            });
            depth = chain.len() as u64;
        }
        self.images_live.fetch_add(1, Ordering::SeqCst);
        self.copy_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.captures.fetch_add(1, Ordering::Relaxed);
        self.chain_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Mark chunk `ch` as (re)created at `tag` without capturing: a fresh
    /// chunk has no pre-image worth retaining (it is unreachable in any
    /// pinned version's walk), and the max keeps this epoch's later lock
    /// acquisitions from capturing its half-built state.
    #[inline]
    pub(crate) fn mark_created(&self, ch: u32, tag: u64) {
        self.copy_epoch[ch as usize].fetch_max(tag, Ordering::SeqCst);
    }

    /// The image a reader at version `v` must use for chunk `ch`: the chain
    /// entry with the smallest tag `> v`, or `None` (read the chunk raw,
    /// then re-check).
    pub(crate) fn resolve_image(&self, ch: u32, v: u64) -> Option<Vec<u64>> {
        if self.images_live.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let shard = self.shard_of(ch).lock();
        let chain = shard.get(&ch)?;
        let mut best: Option<&VersionImage> = None;
        for img in chain.iter() {
            if img.tag > v && best.is_none_or(|b| img.tag < b.tag) {
                best = Some(img);
            }
        }
        let out = best.map(|i| i.lanes.to_vec());
        drop(shard);
        if out.is_some() {
            self.image_resolves.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Record the level-0 head about to be swung away from, tagged with the
    /// swinging operation's stamp (or a conservative `clock + 1` for the
    /// unstamped sweep paths — head swings are logical no-ops, so serving a
    /// conservatively-old head merely walks extra zombies). Must be called
    /// *before* the head CAS so a raw head read racing the swing is always
    /// caught by the reader's chain re-check.
    pub(crate) fn note_head0(&self, old_head: u32, stamp: u64) {
        if !self.has_tickets() {
            return;
        }
        let tag = if stamp != 0 {
            stamp
        } else {
            self.clock_now() + 1
        };
        let mut h = self.head0.lock();
        if h.last() != Some(&(tag, old_head)) {
            h.push((tag, old_head));
        }
    }

    /// The level-0 head at version `v`, if the head chain records one: the
    /// entry with the smallest tag `> v` (first-pushed wins on ties — for
    /// equal tags the earlier push is the older head, and an older head is
    /// always safe: it only prepends zombies whose frozen next chain leads
    /// to the same live chunks).
    pub(crate) fn resolve_head0(&self, v: u64) -> Option<u32> {
        let h = self.head0.lock();
        let mut best: Option<(u64, u32)> = None;
        for &(tag, head) in h.iter() {
            if tag > v && best.is_none_or(|(bt, _)| tag < bt) {
                best = Some((tag, head));
            }
        }
        best.map(|(_, head)| head)
    }

    /// Is retention past the opportunistic-vacuum threshold?
    pub(crate) fn needs_vacuum(&self) -> bool {
        self.images_live.load(Ordering::SeqCst) > VACUUM_HIGH_WATER
    }

    /// Writer-epilogue retention bound: if the high water is exceeded and
    /// no other thread is already sweeping, run one vacuum pass. Same
    /// fence precondition as [`Self::vacuum_locked`] (shared suffices).
    /// Returns whether this call swept.
    pub(crate) fn try_vacuum(&self, rec: Option<&EpochReclaimer>) -> bool {
        if !self.needs_vacuum() {
            return false;
        }
        if self.vacuuming.swap(true, Ordering::Acquire) {
            return false;
        }
        self.vacuum_locked(rec);
        self.vacuuming.store(false, Ordering::Release);
        true
    }

    /// Condemn every image no active ticket can still resolve (tag ≤ oldest
    /// pinned version, or all of them when no ticket is outstanding) and
    /// route the batch through the reclaimer's deferred-token grace
    /// pipeline; also drop batches whose grace has elapsed.
    ///
    /// **Caller must hold the fence** (shared suffices): with the fence
    /// held no new ticket can be minted mid-pass, so the oldest-version
    /// floor read at entry stays valid for the whole sweep. Resolution
    /// clones under the chain mutex, so the deferred drop is defense in
    /// depth, not a memory-safety requirement.
    pub(crate) fn vacuum_locked(&self, rec: Option<&EpochReclaimer>) {
        let min = self.oldest.load(Ordering::SeqCst);
        let droppable = |tag: u64| min == 0 || tag <= min;
        let mut dropped: Vec<VersionImage> = Vec::new();
        for shard in self.chains.iter() {
            let mut m = shard.lock();
            m.retain(|_, chain| {
                let mut i = 0;
                while i < chain.len() {
                    if droppable(chain[i].tag) {
                        dropped.push(chain.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                !chain.is_empty()
            });
        }
        self.head0.lock().retain(|&(tag, _)| !droppable(tag));
        if !dropped.is_empty() {
            let bytes: u64 = dropped.iter().map(|i| i.lanes.len() as u64 * 8).sum();
            self.images_live
                .fetch_sub(dropped.len() as u64, Ordering::SeqCst);
            self.copy_bytes.fetch_sub(bytes, Ordering::Relaxed);
            self.vacuumed
                .fetch_add(dropped.len() as u64, Ordering::Relaxed);
            match rec {
                Some(r) => {
                    let token = self.next_token.fetch_add(1, Ordering::Relaxed);
                    self.condemned.lock().push((token, dropped));
                    r.defer(token);
                }
                // No reclaimer: immediate drop (still safe — see above).
                None => drop(dropped),
            }
        }
        if let Some(r) = rec {
            let mut tokens = Vec::new();
            r.drain_deferred(&mut tokens);
            if !tokens.is_empty() {
                self.condemned.lock().retain(|(t, _)| !tokens.contains(t));
            }
        }
    }

    /// Counter snapshot.
    pub(crate) fn stats(&self) -> MvccStats {
        MvccStats {
            clock: self.clock_now(),
            active_tickets: self.tickets_active.load(Ordering::SeqCst),
            oldest_pinned: self.oldest.load(Ordering::SeqCst),
            images: self.images_live.load(Ordering::SeqCst),
            chain_hwm: self.chain_hwm.load(Ordering::Relaxed),
            copy_bytes: self.copy_bytes.load(Ordering::Relaxed),
            captures: self.captures.load(Ordering::Relaxed),
            vacuumed: self.vacuumed.load(Ordering::Relaxed),
            condemned_batches: self.condemned.lock().len() as u64,
            head_entries: self.head0.lock().len() as u64,
            pins: self.pins.load(Ordering::Relaxed),
            image_resolves: self.image_resolves.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for MvccEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvccEngine")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Gfsl {
    /// Pin the current version for reading: every versioned read through
    /// the returned ticket ([`GfslHandle::get_at`], [`GfslHandle::range_at`],
    /// [`GfslHandle::pairs_at`], …) observes the operation-quiescent state
    /// at the ticket's version, wait-free with respect to writer locks.
    /// The fence is held exclusively only for the clock bump — microseconds
    /// — never for the reads themselves.
    ///
    /// `None` when [`crate::GfslParams::mvcc`] is off.
    ///
    /// Pinning never sweeps: the high-water vacuum runs in the stamped
    /// writers' op epilogues (and the periodic reclaim pass), so a pin is
    /// one exclusive fence acquisition regardless of retention state —
    /// the snapshot tail stays flat under write-heavy load.
    pub fn pin_version(&self) -> Option<ReadTicket<'_>> {
        let mvcc = self.mvcc.as_deref()?;
        Some(mvcc.pin())
    }

    /// Multiversion counters, when [`crate::GfslParams::mvcc`] is on.
    pub fn mvcc_stats(&self) -> Option<MvccStats> {
        self.mvcc.as_deref().map(|m| m.stats())
    }
}

impl<'a, P: MemProbe> GfslHandle<'a, P> {
    /// The value of `k` at the ticket's pinned version, never blocking on
    /// writer locks. An O(bottom-chunks) walk from the version-resolved
    /// head — see the module docs for why no descent accelerator is sound.
    pub fn get_at(&mut self, k: u32, ticket: &ReadTicket<'_>) -> Option<u32> {
        if !is_user_key(k) {
            return None;
        }
        let mut out = None;
        self.for_each_in_range_at(k, k, ticket, |_, v| out = Some(v));
        out
    }

    /// Visit every `(key, value)` with `lo <= key <= hi` at the ticket's
    /// pinned version, in ascending key order; returns the count. The walk
    /// is wait-free with respect to writer locks (chunks mutated since the
    /// pinned version resolve to their chain pre-images).
    pub fn for_each_in_range_at(
        &mut self,
        lo: u32,
        hi: u32,
        ticket: &ReadTicket<'_>,
        mut f: impl FnMut(u32, u32),
    ) -> usize {
        debug_assert!(
            self.list()
                .mvcc
                .as_deref()
                .is_some_and(|m| std::ptr::eq(m, ticket.engine)),
            "ticket from a different list"
        );
        if lo > hi {
            return 0;
        }
        let lo = lo.max(1); // 0 is the -inf sentinel
        if !is_user_key(lo) && lo != 1 {
            return 0;
        }
        let v = ticket.version();
        self.with_pin(|h| h.range_at_pinned(lo, hi, v, &mut f))
    }

    /// Collect `lo..=hi` at the pinned version into a vector.
    pub fn range_at(&mut self, lo: u32, hi: u32, ticket: &ReadTicket<'_>) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        self.for_each_in_range_at(lo, hi, ticket, |k, v| out.push((k, v)));
        out
    }

    /// Number of keys in `lo..=hi` at the pinned version.
    pub fn count_range_at(&mut self, lo: u32, hi: u32, ticket: &ReadTicket<'_>) -> usize {
        self.for_each_in_range_at(lo, hi, ticket, |_, _| {})
    }

    /// Every `(key, value)` pair at the pinned version, sorted — the
    /// snapshot-export walk (cluster snapshots and durable checkpoints ride
    /// this instead of write-holding shard fences).
    pub fn pairs_at(&mut self, ticket: &ReadTicket<'_>) -> Vec<(u32, u32)> {
        self.range_at(1, KEY_INF - 1, ticket)
    }

    /// Read chunk `ch` as of version `v`: chain image if one tags `> v`,
    /// else a raw read double-checked against the chain (a stamp-`> v`
    /// writer pushes its pre-image before mutating, so a torn raw read is
    /// always caught here and the image wins).
    fn read_chunk_at(&mut self, ch: u32, v: u64) -> ChunkView {
        let list = self.list();
        let team = &list.team;
        let mvcc = list.mvcc.as_deref().expect("versioned read without mvcc");
        // `chunk_epoch <= v` proves no chain entry tags `> v`, so both
        // resolve round trips (mutex + chain walk + lane clone) are
        // skipped for every chunk not captured since the pin — the common
        // case on a large scan, and what keeps the scan tail flat while
        // writers hammer the chain shards with captures.
        if mvcc.chunk_epoch(ch) > v {
            if let Some(lanes) = mvcc.resolve_image(ch, v) {
                return ChunkView::from_lanes(team, &lanes);
            }
        }
        let raw = self.read_chunk(ch);
        // Re-check: a torn raw read means some stamp-`> v` writer started
        // mutating, which means its capture (epoch bump, then image push)
        // completed first — so the epoch test cannot miss it.
        if mvcc.chunk_epoch(ch) > v {
            if let Some(lanes) = mvcc.resolve_image(ch, v) {
                return ChunkView::from_lanes(team, &lanes);
            }
        }
        raw
    }

    /// The level-0 head at version `v` (same double-check protocol as
    /// chunks; `note_head0` runs before the CAS).
    fn head0_at(&mut self, v: u64) -> u32 {
        let list = self.list();
        let mvcc = list.mvcc.as_deref().expect("versioned read without mvcc");
        if let Some(h) = mvcc.resolve_head0(v) {
            return h;
        }
        let raw = list.head_of(0);
        mvcc.resolve_head0(v).unwrap_or(raw)
    }

    /// The bottom-level walk at version `v`. Mirrors `range_pinned`'s
    /// dedup discipline (cross-chunk duplicates mid-merge: rightmost wins)
    /// defensively, although a quiescent version should never show one.
    fn range_at_pinned(
        &mut self,
        lo: u32,
        hi: u32,
        v: u64,
        f: &mut dyn FnMut(u32, u32),
    ) -> usize {
        let team = self.list().team;
        let kernel = self.list().params.kernel;
        let mut cur = self.head0_at(v);
        let mut pending: Option<(u32, u32)> = None;
        let mut count = 0usize;
        loop {
            let view = self.read_chunk_at(cur, v);
            if view.is_zombie(&team) {
                // Zombie at `v`: its data is dead but its frozen next still
                // chains rightward through the version's list.
                let next = view.next(&team);
                if next == NIL {
                    break;
                }
                cur = next;
                continue;
            }
            let words = view.data_words(&team);
            let in_range = kernel.keys_in_range(words, lo, hi);
            for lane in 0..team.dsize() {
                if !in_range.is_set(lane) {
                    continue;
                }
                let e = view.entry(lane);
                let k = e.key();
                match pending {
                    Some((pk, _)) if k == pk => pending = Some((k, e.val())),
                    Some((pk, pv)) if k > pk => {
                        f(pk, pv);
                        count += 1;
                        pending = Some((k, e.val()));
                    }
                    Some(_) => {}
                    None => pending = Some((k, e.val())),
                }
            }
            // Sorted data: any live key above `hi` ends the scan.
            let live = kernel.keys_live(words).bits();
            let le_hi = kernel.keys_le(words, hi).bits();
            if live & !le_hi != 0 {
                break;
            }
            let next = view.next(&team);
            if next == NIL {
                break;
            }
            cur = next;
        }
        if let Some((pk, pv)) = pending.take() {
            f(pk, pv);
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    fn mvcc_list() -> Gfsl {
        Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            mvcc: true,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn pin_version_requires_knob() {
        let plain = Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        })
        .unwrap();
        assert!(plain.pin_version().is_none());
        assert!(plain.mvcc_stats().is_none());
        let list = mvcc_list();
        assert!(list.pin_version().is_some());
        assert_eq!(list.mvcc_stats().unwrap().pins, 1);
    }

    #[test]
    fn snapshot_ignores_later_writes() {
        let list = mvcc_list();
        let mut h = list.handle();
        for k in 1..=100u32 {
            h.insert(k * 2, k).unwrap();
        }
        let t = list.pin_version().unwrap();
        // Mutate heavily after the pin: inserts, overwrites, removes.
        for k in 1..=100u32 {
            h.remove(k * 2);
            h.insert(k * 2 + 1, 999).unwrap();
        }
        // The ticket still sees exactly the pre-pin state.
        for k in 1..=100u32 {
            assert_eq!(h.get_at(k * 2, &t), Some(k), "key {} at v", k * 2);
            assert_eq!(h.get_at(k * 2 + 1, &t), None);
        }
        let pairs = h.pairs_at(&t);
        assert_eq!(pairs.len(), 100);
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        // Live reads see the new state.
        assert_eq!(h.get(3), Some(999));
        assert_eq!(h.get(4), None);
    }

    #[test]
    fn two_tickets_pin_distinct_versions() {
        let list = mvcc_list();
        let mut h = list.handle();
        h.insert(10, 1).unwrap();
        let t1 = list.pin_version().unwrap();
        h.upsert(10, 2).unwrap();
        h.insert(20, 7).unwrap();
        let t2 = list.pin_version().unwrap();
        h.remove(10);
        h.remove(20);
        assert!(t1.version() < t2.version());
        assert_eq!(h.get_at(10, &t1), Some(1));
        assert_eq!(h.get_at(20, &t1), None);
        assert_eq!(h.get_at(10, &t2), Some(2));
        assert_eq!(h.get_at(20, &t2), Some(7));
        assert_eq!(h.get(10), None);
    }

    #[test]
    fn range_at_is_frozen_under_churn() {
        let list = mvcc_list();
        let mut h = list.handle();
        for k in 1..=500u32 {
            h.insert(k * 3, k).unwrap();
        }
        let t = list.pin_version().unwrap();
        let before = h.range_at(30, 600, &t);
        // Churn hard enough to split/merge/recycle chunks.
        for round in 0..4u32 {
            for k in 1..=500u32 {
                if k % 2 == round as u32 % 2 {
                    h.remove(k * 3);
                } else {
                    h.upsert(k * 3, k + round).unwrap();
                }
            }
            for k in 1..=500u32 {
                h.upsert(k * 3, k).unwrap();
            }
        }
        let after = h.range_at(30, 600, &t);
        assert_eq!(before, after, "pinned range drifted under churn");
        assert_eq!(h.count_range_at(1, u32::MAX - 1, &t), 500);
    }

    #[test]
    fn vacuum_reclaims_after_release() {
        let list = mvcc_list();
        let mut h = list.handle();
        for k in 1..=200u32 {
            h.insert(k, k).unwrap();
        }
        {
            let t = list.pin_version().unwrap();
            for k in 1..=200u32 {
                h.upsert(k, k + 1).unwrap();
            }
            let s = list.mvcc_stats().unwrap();
            assert!(s.images > 0, "captures happened under a live ticket");
            assert_eq!(h.get_at(1, &t), Some(1));
        }
        // Ticket dropped: repeated reclaim passes vacuum the chains and walk
        // the deferred batches through the reclaimer grace.
        for _ in 0..8 {
            h.reclaim_pass();
        }
        let s = list.mvcc_stats().unwrap();
        assert_eq!(s.active_tickets, 0);
        assert_eq!(s.images, 0, "no ticket, no retained images: {s:?}");
        assert_eq!(s.condemned_batches, 0, "grace drained: {s:?}");
        assert!(s.vacuumed > 0);
    }

    #[test]
    fn writers_skip_capture_with_no_tickets() {
        let list = mvcc_list();
        let mut h = list.handle();
        for k in 1..=300u32 {
            h.insert(k, k).unwrap();
            h.upsert(k, k + 1).unwrap();
        }
        let s = list.mvcc_stats().unwrap();
        assert_eq!(s.captures, 0, "no reader, no copies: {s:?}");
        assert_eq!(s.copy_bytes, 0);
    }

    #[test]
    fn snapshot_survives_concurrent_write_soak() {
        let list = mvcc_list();
        {
            let mut h = list.handle();
            for k in 1..=400u32 {
                h.insert(k * 2, k).unwrap();
            }
        }
        let t = list.pin_version().unwrap();
        let want: Vec<(u32, u32)> = (1..=400u32).map(|k| (k * 2, k)).collect();
        let stop_flag = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let stop = &stop_flag;
            let lr = &list;
            for seed in 0..2u32 {
                s.spawn(move || {
                    let mut h = lr.handle();
                    let mut x = seed as u64 + 1;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = ((x >> 33) as u32 % 900) + 1;
                        if x & 1 == 0 {
                            let _ = h.insert(k, k);
                        } else {
                            h.remove(k);
                        }
                    }
                });
            }
            let tref = &t;
            s.spawn(move || {
                let mut h = lr.handle();
                for _ in 0..30 {
                    let got = h.pairs_at(tref);
                    assert_eq!(got, want, "pinned snapshot drifted under soak");
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
        list.assert_valid();
    }

    /// Pinned scans recorded through [`Recorder::finish_scan`] pass the
    /// per-key linearizability checker against a live writer history: each
    /// scan observation behaves exactly like a `get` spanning the scan's
    /// real-time window.
    #[test]
    fn pinned_scans_are_linearizable_reads() {
        use crate::history::{check_linearizable, HistoryClock, OpAction, Recorder};

        const KEYS: u32 = 60;
        let list = mvcc_list();
        let clock = HistoryClock::new();
        let done = std::sync::atomic::AtomicBool::new(false);
        let (writes, scans) = std::thread::scope(|s| {
            let lr = &list;
            let ck = &clock;
            let done = &done;
            let writer = s.spawn(move || {
                let mut r = Recorder::new(ck);
                let mut h = lr.handle();
                let mut x = 0x9E37_79B9u64;
                for _ in 0..4_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let k = ((x >> 33) as u32 % KEYS) + 1;
                    let t = r.invoke();
                    if x & 1 == 0 {
                        let ok = h.insert(k, k * 10).unwrap();
                        r.finish(k, OpAction::Insert { value: k * 10, ok }, t);
                    } else {
                        let ok = h.remove(k);
                        r.finish(k, OpAction::Remove { ok }, t);
                    }
                }
                done.store(true, std::sync::atomic::Ordering::Relaxed);
                r.records
            });
            let scanner = s.spawn(move || {
                let mut r = Recorder::new(ck);
                let mut h = lr.handle();
                let mut n = 0u32;
                while !done.load(std::sync::atomic::Ordering::Relaxed) || n == 0 {
                    let t = r.invoke();
                    let ticket = lr.pin_version().unwrap();
                    let pairs = h.range_at(1, KEYS, &ticket);
                    drop(ticket);
                    let by_key: std::collections::HashMap<u32, u32> =
                        pairs.into_iter().collect();
                    r.finish_scan((1..=KEYS).map(|k| (k, by_key.get(&k).copied())), t);
                    n += 1;
                }
                (r.records, n)
            });
            (writer.join().unwrap(), scanner.join().unwrap())
        });
        let (scan_records, n_scans) = scans;
        assert!(n_scans >= 1);
        let mut records = writes;
        records.extend(scan_records);
        check_linearizable(&records, &std::collections::HashMap::new()).unwrap();
    }
}
