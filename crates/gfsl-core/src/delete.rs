//! `Delete` (paper §4.2.3): top-down removal under the bottom-level lock,
//! merging underfull chunks into their right neighbour and marking them as
//! zombies.

use gfsl_gpu_mem::MemProbe;
use std::sync::atomic::Ordering;

use crate::chunk::{is_user_key, ops, ChunkView, Entry, KEY_NEG_INF};
use crate::skiplist::{Commit, GfslHandle, Intent};
use crate::split::MovedKeys;

impl<'a, P: MemProbe> GfslHandle<'a, P> {
    /// Remove `k`. Returns `true` if the key was present.
    ///
    /// The bottom-level enclosing chunk stays locked until `k` has been
    /// removed from every level, which serializes updates to the same key.
    /// Upper levels are processed top-down with per-level lock/remove/unlock
    /// and a containment pre-check to keep contention off the sparse upper
    /// levels.
    ///
    /// Deviation from the paper (documented): if a merge needs to pre-split
    /// the absorbing chunk and the pool is exhausted, we fall back to a
    /// plain (merge-free) removal instead of failing — the chunk is merely
    /// left underfull, which every traversal tolerates.
    pub fn remove(&mut self, k: u32) -> bool {
        self.stats.remove_ops += 1;
        if !is_user_key(k) {
            return false;
        }
        // Stamped with the mvcc version clock (a passthrough without the
        // knob). Reclamation maintenance runs inside the stamp but before
        // any lock is taken: the verification scan does certified reads and
        // must never wait on a chunk this handle itself holds locked.
        self.with_version_stamp(|h| {
            h.maybe_reclaim();
            h.with_pin(|h| h.remove_pinned(k))
        })
    }

    fn remove_pinned(&mut self, k: u32) -> bool {
        let team = self.list.team;
        let (found, path) = self.search_slow(k);
        if found.found.is_none() {
            return false;
        }
        let (p_bottom, bview) = self.find_and_lock_enclosing(path[0], k);
        if bview.lane_of_key(&team, k).is_none() {
            // Lost the race to another deleter. Decided under the bottom
            // lock, so the outcome survives a crash in the unlock below.
            self.journal.committed = Some(Commit::Removed(false));
            self.unlock(p_bottom);
            return false;
        }

        // Re-read the height under the bottom lock so levels added since the
        // traversal are not missed; path entries above the traversal height
        // already default to the level heads.
        let height = self.list.height();
        for level in (1..=height).rev() {
            let probe_result = self.search_lateral(k, path[level]);
            if probe_result.found.is_none() {
                continue; // k was never raised this high
            }
            let (p_enc, eview) = self.find_and_lock_enclosing(probe_result.enclosing, k);
            if eview.lane_of_key(&team, k).is_none() {
                // Cannot happen while we hold k's bottom lock (no other team
                // may update k), but a defensive unlock is free.
                self.unlock(p_enc);
                continue;
            }
            self.remove_from_chunk(k, p_enc, &eview, level);
        }

        // Finally remove from the bottom level; only then is k logically
        // gone from the structure.
        let bview = self.read_chunk(p_bottom);
        debug_assert!(bview.lane_of_key(&team, k).is_some());
        self.remove_from_chunk(k, p_bottom, &bview, 0);
        true
    }

    /// Remove and return the smallest key (with its value), or `None` when
    /// the set is empty — the extract-min of a skiplist priority queue.
    ///
    /// Implemented as a scan-then-remove loop: [`min_entry`] is lock-free,
    /// and losing the removal race to a concurrent consumer simply rescans
    /// (the new minimum may differ). Each successful call removes exactly
    /// one element; concurrent callers never remove the same one.
    ///
    /// Caveat: the returned *value* comes from the scan. If another thread
    /// removes and reinserts the same key with a different value between
    /// the scan and this call's removal, the returned value may belong to
    /// the earlier incarnation (the key itself is always the one this call
    /// removed).
    ///
    /// [`min_entry`]: crate::skiplist::GfslHandle::min_entry
    pub fn pop_min(&mut self) -> Option<(u32, u32)> {
        loop {
            let (k, v) = self.min_entry()?;
            if self.remove(k) {
                return Some((k, v));
            }
        }
    }

    /// Remove `k` from a locked chunk at `level`, merging if that crosses
    /// the minimum-fill threshold (`removeFromChunk`, Algorithm 4.12). The
    /// chunk is unlocked (or zombified) on return.
    pub(crate) fn remove_from_chunk(&mut self, k: u32, p_enc: u32, view: &ChunkView, level: usize) {
        let team = self.list.team;
        let count = view.num_keys(&team);
        let threshold = self.list.params.merge_threshold();

        if count > threshold {
            // Plenty left: plain removal.
            self.execute_remove_no_merge(p_enc, view, k);
            if level == 0 {
                self.journal.committed = Some(Commit::Removed(true));
            }
            self.unlock(p_enc);
            return;
        }

        match self.lock_next_chunk(p_enc, level) {
            None => {
                // Last chunk in the level: never merged, never zombified;
                // just remove, even if that empties it completely.
                self.execute_remove_no_merge(p_enc, view, k);
                if level == 0 {
                    self.journal.committed = Some(Commit::Removed(true));
                }
                if level > 0 {
                    self.note_possible_level_empty(p_enc, level);
                }
                self.unlock(p_enc);
            }
            Some(p_next) => {
                let mut nview = self.read_chunk(p_next);
                if nview.num_keys(&team) + count - 1 > team.dsize() as u32 {
                    // The absorber is too full: split it first (splitRemove).
                    match self.split_remove(p_next, &nview, level) {
                        Ok(()) => {
                            self.list.inc_level_chunks(level);
                            nview = self.read_chunk(p_next);
                        }
                        Err(_) => {
                            // Pool exhausted: degrade to a merge-free remove.
                            self.unlock(p_next);
                            self.execute_remove_no_merge(p_enc, view, k);
                            if level == 0 {
                                self.journal.committed = Some(Commit::Removed(true));
                            }
                            self.unlock(p_enc);
                            return;
                        }
                    }
                }
                // Journal the merge before the copy so a crash between the
                // copy and the zombie mark rolls the merge *forward* (the
                // absorber's image already carries the survivors).
                self.journal.intent = Intent::Merge {
                    dying: p_enc,
                    absorber: p_next,
                    k,
                    level,
                    copied: false,
                };
                let moved = self.execute_remove_merge(p_enc, view, p_next, &nview, k);
                if let Intent::Merge { copied, .. } = &mut self.journal.intent {
                    *copied = true;
                }
                ops::mark_zombie(
                    &team,
                    &self.list.pool,
                    &mut self.probe,
                    self.list.chunk(p_enc),
                );
                // Zombification is a terminal release of p_enc's lock; for k
                // it is also the linearization point of the removal (until
                // the mark, readers could still find k in the dying chunk).
                self.held.released(p_enc);
                if level == 0 {
                    self.journal.committed = Some(Commit::Removed(true));
                }
                self.stats.merges += 1;
                self.list.dec_level_chunks(level);
                self.unlock(p_next);
                self.update_down_ptrs(level, moved.as_slice(), p_next);
                self.journal.intent = Intent::None;
            }
        }
    }

    /// Physically remove `k` by shifting larger keys one entry left
    /// (`executeRemoveNoMerge`, Fig. 4.6). Writes proceed left-to-right so
    /// no key transiently disappears; if `k` was the chunk's max, the max
    /// field is lowered *first* so lock-free readers never chase a max that
    /// is no longer present.
    pub(crate) fn execute_remove_no_merge(&mut self, p_enc: u32, view: &ChunkView, k: u32) {
        let team = self.list.team;
        let idx = view
            .lane_of_key(&team, k)
            .expect("removing a key that is not in the locked chunk");
        let ch = self.list.chunk(p_enc);

        if view.max(&team) == k {
            let new_max = if idx == 0 {
                KEY_NEG_INF
            } else {
                view.entry(idx - 1).key()
            };
            ops::write_next_field(
                &team,
                &self.list.pool,
                &mut self.probe,
                ch,
                new_max,
                view.next(&team),
            );
        }

        if crate::bug_knobs::revert_remove_shift() {
            return self.execute_remove_shift_reverted(p_enc, view, idx);
        }
        let mut cleared = false;
        for i in idx + 1..team.dsize() {
            let e = view.entry(i);
            ops::write_entry(&self.list.pool, &mut self.probe, ch, i - 1, e);
            if e.is_empty() {
                cleared = true;
                break;
            }
        }
        if !cleared {
            // k sat in (or the shift reached) the final data slot: the NEXT
            // lane empties it explicitly (no lane to its right to do so).
            ops::write_entry(
                &self.list.pool,
                &mut self.probe,
                ch,
                team.dsize() - 1,
                Entry::EMPTY,
            );
        }
    }

    /// The pre-PR-1 buggy shift, kept behind
    /// [`crate::bug_knobs::revert_remove_shift`] as the model checker's
    /// differential oracle: identical final state, but the writes run
    /// right-to-left, so every surviving key in the shifted range vanishes
    /// from the chunk between the write that clobbers its slot and the
    /// write that restores it one slot left — a concurrent lock-free `get`
    /// interleaved into that window misses a present key.
    fn execute_remove_shift_reverted(&mut self, p_enc: u32, view: &ChunkView, idx: usize) {
        let team = self.list.team;
        let ch = self.list.chunk(p_enc);
        let mut end = team.dsize();
        for i in idx + 1..team.dsize() {
            if view.entry(i).is_empty() {
                end = i + 1;
                break;
            }
        }
        for i in (idx + 1..end).rev() {
            ops::write_entry(&self.list.pool, &mut self.probe, ch, i - 1, view.entry(i));
        }
        if end == team.dsize() {
            ops::write_entry(
                &self.list.pool,
                &mut self.probe,
                ch,
                team.dsize() - 1,
                Entry::EMPTY,
            );
        }
    }

    /// Move every live entry except `k` from `p_enc` into `p_next`
    /// (`executeRemoveMerge`, Fig. 4.5c). Both chunks are locked. Target
    /// entries are written in descending index order so concurrent readers
    /// (which give precedence to higher lanes) never lose a key. Returns the
    /// moved keys for the down-pointer repair pass.
    pub(crate) fn execute_remove_merge(
        &mut self,
        _p_enc: u32,
        eview: &ChunkView,
        p_next: u32,
        nview: &ChunkView,
        k: u32,
    ) -> MovedKeys {
        let team = self.list.team;
        let mut merged = [Entry::EMPTY; gfsl_simt::WARP_SIZE];
        let mut moved = MovedKeys::new();
        let mut m = 0usize;
        for (_, e) in eview.live_entries(&team) {
            if e.key() != k {
                merged[m] = e;
                moved.push(e.key());
                m += 1;
            }
        }
        let s_count = m;
        for (_, e) in nview.live_entries(&team) {
            merged[m] = e;
            m += 1;
        }
        debug_assert!(m <= team.dsize(), "absorber overfull despite pre-split");
        if s_count == 0 {
            // The dying chunk held only k: nothing moves.
            return moved;
        }
        let ch = self.list.chunk(p_next);
        for j in (0..m).rev() {
            ops::write_entry(&self.list.pool, &mut self.probe, ch, j, merged[j]);
        }
        moved
    }

    /// After emptying the last chunk of an upper level, mark the level
    /// unused when it holds nothing but `-∞` (paper: "the chunk counter for
    /// that level is decremented to show that the level is empty").
    fn note_possible_level_empty(&mut self, p_enc: u32, level: usize) {
        let team = self.list.team;
        if self.list.head_of(level) != p_enc {
            return; // not the only chunk in the level
        }
        let v = self.read_chunk(p_enc);
        let live = v.num_keys(&team);
        let only_sentinel = live == 0 || (live == 1 && v.entry(0).key() == KEY_NEG_INF);
        if only_sentinel {
            // We hold the level's only chunk locked, so no split can race.
            self.list.level_chunks[level].store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    fn list16() -> Gfsl {
        Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn insert_remove_roundtrip() {
        let list = list16();
        let mut h = list.handle();
        assert!(h.insert(5, 50).unwrap());
        assert!(h.remove(5));
        assert!(!h.contains(5));
        assert!(!h.remove(5), "double remove fails");
        assert!(h.insert(5, 51).unwrap(), "reinsert after remove");
        assert_eq!(h.get(5), Some(51));
    }

    #[test]
    fn remove_missing_and_reserved_keys() {
        let list = list16();
        let mut h = list.handle();
        assert!(!h.remove(77));
        assert!(!h.remove(0));
        assert!(!h.remove(u32::MAX));
    }

    #[test]
    fn remove_max_key_of_chunk_updates_max() {
        let list = list16();
        let mut h = list.handle();
        // Force a split so the first chunk has a finite max.
        for k in 1..=14u32 {
            h.insert(k, k).unwrap();
        }
        let team = &list.team;
        let head = list.head_of(0);
        let v = h.read_chunk(head);
        let max = v.max(team);
        assert!(max < u32::MAX);
        assert!(h.remove(max));
        let v = h.read_chunk(head);
        assert!(v.max(team) < max, "max lowered after removing the max key");
        assert!(!h.contains(max));
        // All other keys survive.
        for k in 1..=14u32 {
            assert_eq!(h.contains(k), k != max, "k={k}");
        }
    }

    #[test]
    fn deletions_trigger_merges_and_keys_stay_consistent() {
        let list = list16();
        let mut h = list.handle();
        for k in 1..=200u32 {
            h.insert(k, k).unwrap();
        }
        // Delete a dense band to force underfull chunks.
        for k in 50..=150u32 {
            assert!(h.remove(k), "k={k}");
        }
        assert!(h.stats().merges > 0, "deleting half the keys must merge");
        for k in 1..=200u32 {
            let expect = !(50..=150).contains(&k);
            assert_eq!(h.contains(k), expect, "k={k}");
        }
    }

    #[test]
    fn drain_everything_then_refill() {
        let list = list16();
        let mut h = list.handle();
        for k in 1..=500u32 {
            h.insert(k, k).unwrap();
        }
        for k in 1..=500u32 {
            assert!(h.remove(k), "k={k}");
        }
        for k in 1..=500u32 {
            assert!(!h.contains(k), "k={k}");
        }
        // The emptied structure accepts new keys (chunk-entry reuse is the
        // paper's answer to reclamation pressure).
        for k in 1..=100u32 {
            assert!(h.insert(k, k + 1).unwrap(), "k={k}");
        }
        for k in 1..=100u32 {
            assert_eq!(h.get(k), Some(k + 1), "k={k}");
        }
    }

    #[test]
    fn interleaved_insert_delete_random_order() {
        let list = list16();
        let mut h = list.handle();
        let mut reference = std::collections::BTreeSet::new();
        let mut x: u64 = 88172645463325252;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..20_000 {
            let k = (rng() % 500 + 1) as u32;
            match rng() % 3 {
                0 => {
                    assert_eq!(h.insert(k, k).unwrap(), reference.insert(k), "insert {k}");
                }
                1 => {
                    assert_eq!(h.remove(k), reference.remove(&k), "remove {k}");
                }
                _ => {
                    assert_eq!(h.contains(k), reference.contains(&k), "contains {k}");
                }
            }
        }
        for k in 1..=500u32 {
            assert_eq!(h.contains(k), reference.contains(&k), "final k={k}");
        }
    }

    #[test]
    fn upper_level_entries_removed_with_key() {
        let list = list16();
        let mut h = list.handle();
        for k in 1..=1000u32 {
            h.insert(k, k).unwrap();
        }
        assert!(list.height() >= 1);
        // Remove every key; upper levels must drain too (structure returns
        // to height 0 via the level-empty bookkeeping).
        for k in 1..=1000u32 {
            assert!(h.remove(k), "k={k}");
        }
        for k in 1..=1000u32 {
            assert!(!h.contains(k));
        }
        assert_eq!(list.height(), 0, "levels marked empty after draining");
    }
}
