//! Half-warp memory coalescing.
//!
//! Paper §2.2: "Each half of a warp (*half-warp*) issues access requests
//! separately, and a memory transaction is performed for every cache line
//! covered by the requests. Thus, if all threads in a half-warp access values
//! that can be coalesced into the same cache line then only one memory
//! transaction will occur, while scattered access results in multiple serial
//! transactions."

use crate::layout::{line_of, LineAddr, WordAddr};

/// Lanes per half-warp on all hardware the paper considers.
pub const HALF_WARP: usize = 16;

/// Words per 32-byte DRAM sector. Misses are *filled* at line granularity
/// into L2 but *fetched* from DRAM at sector granularity, so a scattered
/// 8-byte access costs one sector while a full chunk read costs all four
/// sectors of each line — counted by the callback's mask.
pub const SECTOR_WORDS: u32 = 4;

/// Compute the distinct cache lines touched by a warp-wide access, half-warp
/// by half-warp, invoking `on_line(line, sector_mask)` once per
/// (deduplicated) line per half-warp, where `sector_mask` has one bit per
/// 32-byte sector of the line covered by the requests. Returns the total
/// number of memory transactions.
///
/// Each half-warp issues independently, so the *same* line accessed by both
/// halves costs two transactions — this is why a 256-byte GFSL-32 chunk read
/// costs exactly two transactions while a 128-byte GFSL-16 chunk read costs
/// one.
pub fn transactions(addrs: &[WordAddr], mut on_line: impl FnMut(LineAddr, u8)) -> u32 {
    let mut total = 0u32;
    for half in addrs.chunks(HALF_WARP) {
        // Tiny fixed-capacity dedup: a half-warp touches at most 16 lines.
        let mut seen = [LineAddr::MAX; HALF_WARP];
        let mut masks = [0u8; HALF_WARP];
        let mut n = 0usize;
        for &a in half {
            let line = line_of(a);
            let sector = 1u8 << ((a % crate::layout::LINE_WORDS as u32) / SECTOR_WORDS);
            match seen[..n].iter().position(|&l| l == line) {
                Some(i) => masks[i] |= sector,
                None => {
                    seen[n] = line;
                    masks[n] = sector;
                    n += 1;
                    total += 1;
                }
            }
        }
        for i in 0..n {
            on_line(seen[i], masks[i]);
        }
    }
    total
}

/// Transaction count only (no per-line callback).
#[inline]
pub fn transaction_count(addrs: &[WordAddr]) -> u32 {
    transactions(addrs, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn aligned_16_word_chunk_is_one_transaction() {
        let addrs: Vec<WordAddr> = (64..80).collect();
        assert_eq!(transaction_count(&addrs), 1);
    }

    #[test]
    fn aligned_32_word_chunk_is_two_transactions() {
        let addrs: Vec<WordAddr> = (64..96).collect();
        assert_eq!(transaction_count(&addrs), 2);
    }

    #[test]
    fn fully_scattered_warp_is_32_transactions() {
        // Each lane touches its own line: worst case, like M&C traversals.
        let addrs: Vec<WordAddr> = (0..32u32).map(|i| i * 16).collect();
        assert_eq!(transaction_count(&addrs), 32);
    }

    #[test]
    fn same_line_in_both_halves_costs_two() {
        // Half-warps issue separately (paper §2.2).
        let addrs: Vec<WordAddr> = vec![0; 32];
        assert_eq!(transaction_count(&addrs), 2);
    }

    #[test]
    fn misaligned_16_word_read_spans_two_lines() {
        let addrs: Vec<WordAddr> = (8..24).collect();
        assert_eq!(transaction_count(&addrs), 2);
    }

    #[test]
    fn single_lane_access_is_one_transaction() {
        assert_eq!(transaction_count(&[12345]), 1);
    }

    #[test]
    fn sector_masks_cover_touched_sectors_only() {
        // A full 16-word line read covers all four sectors.
        let addrs: Vec<WordAddr> = (16..32).collect();
        let mut masks = Vec::new();
        transactions(&addrs, |_, m| masks.push(m));
        assert_eq!(masks, vec![0b1111]);
        // A single 8-byte access covers exactly one sector.
        let mut masks = Vec::new();
        transactions(&[17], |_, m| masks.push(m));
        assert_eq!(masks, vec![0b0001]);
        transactions(&[31], |_, m| masks.push(m));
        assert_eq!(masks[1], 0b1000);
        // Two accesses in different sectors of one line: one txn, two bits.
        let mut masks = Vec::new();
        let n = transactions(&[16, 27], |_, m| masks.push(m));
        assert_eq!(n, 1);
        assert_eq!(masks, vec![0b0101]);
    }

    #[test]
    fn callback_sees_each_line_once_per_half_warp() {
        let addrs: Vec<WordAddr> = (0..32).collect();
        let mut lines = Vec::new();
        let n = transactions(&addrs, |l, _| lines.push(l));
        assert_eq!(n, 2);
        assert_eq!(lines, vec![0, 1]);
    }

    proptest! {
        #[test]
        fn count_equals_sum_of_per_half_distinct_lines(
            addrs in proptest::collection::vec(0u32..100_000, 0..64)
        ) {
            let got = transaction_count(&addrs);
            let expected: u32 = addrs
                .chunks(HALF_WARP)
                .map(|half| {
                    half.iter()
                        .map(|&a| line_of(a))
                        .collect::<std::collections::HashSet<_>>()
                        .len() as u32
                })
                .sum();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn never_more_transactions_than_accesses(
            addrs in proptest::collection::vec(0u32..1_000_000, 0..64)
        ) {
            prop_assert!(transaction_count(&addrs) as usize <= addrs.len());
        }
    }
}
