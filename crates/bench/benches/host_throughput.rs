//! Host-side per-operation throughput of the real structures, against a
//! `Mutex<BTreeMap>` reference — a sanity baseline showing the concurrent
//! structures run at competitive native speed.

use std::collections::BTreeMap;
use std::sync::Mutex;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gfsl_bench::{ops, prefilled_gfsl, prefilled_mc, KeyStream};
use gfsl_workload::{Op, OpMix};

fn bench_host(c: &mut Criterion) {
    const RANGE: u32 = 100_000;
    let mut g = c.benchmark_group("host_throughput");

    let gfsl = prefilled_gfsl(RANGE, gfsl::TeamSize::ThirtyTwo);
    let mut gh = gfsl.handle();
    let mut keys = KeyStream::new(RANGE);
    g.bench_function("gfsl32_contains", |b| {
        b.iter(|| gh.contains(keys.next_key()))
    });

    let stream = ops(OpMix::C80, RANGE, 1 << 16);
    let mut i = 0usize;
    g.bench_function("gfsl32_mixed_c80", |b| {
        b.iter(|| {
            let op = &stream[i & (stream.len() - 1)];
            i += 1;
            match *op {
                Op::Insert(k, v) => {
                    let _ = gh.insert(k, v).unwrap();
                }
                Op::Delete(k) => {
                    let _ = gh.remove(k);
                }
                Op::Contains(k) => {
                    let _ = gh.contains(k);
                }
            }
        })
    });

    let mc = prefilled_mc(RANGE);
    let mut mh = mc.handle();
    let mut keys = KeyStream::new(RANGE);
    g.bench_function("mc_contains", |b| b.iter(|| mh.contains(keys.next_key())));

    let mut i = 0usize;
    g.bench_function("mc_mixed_c80", |b| {
        b.iter(|| {
            let op = &stream[i & (stream.len() - 1)];
            i += 1;
            match *op {
                Op::Insert(k, v) => {
                    let _ = mh.insert(k, v);
                }
                Op::Delete(k) => {
                    let _ = mh.remove(k);
                }
                Op::Contains(k) => {
                    let _ = mh.contains(k);
                }
            }
        })
    });

    // Reference: coarse-locked BTreeMap.
    let reference = Mutex::new(BTreeMap::new());
    for k in (1..RANGE).step_by(2) {
        reference.lock().unwrap().insert(k, k);
    }
    let mut keys = KeyStream::new(RANGE);
    g.bench_function("btreemap_mutex_contains", |b| {
        b.iter(|| reference.lock().unwrap().contains_key(&keys.next_key()))
    });

    // Construction cost.
    g.bench_function("gfsl32_build_10k", |b| {
        b.iter_batched(
            || (),
            |_| {
                let list = gfsl::Gfsl::new(gfsl::GfslParams::sized_for(10_000)).unwrap();
                {
                    let mut h = list.handle();
                    for k in 1..=10_000u32 {
                        h.insert(k, k).unwrap();
                    }
                }
                list
            },
            BatchSize::PerIteration,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_host);
criterion_main!(benches);
