//! Regression: the chaos turnstile must never wedge on a *retired*
//! participant.
//!
//! The bug (found while wiring the model checker's stepped executor onto
//! the same turnstile): an injected panic retires its participant on the
//! way out, but under containment the catch site's bookkeeping —
//! quarantining the chunks the dead op still holds — performs probed pool
//! accesses *before* the participant is revived. `ChaosController::step`
//! used to park every caller unconditionally, and `choose` never grants a
//! turn to a retired participant, so the still-retired caller waited
//! forever while its peers spun on the lock words it held: a whole-process
//! deadlock with every thread alive and no panic to report.
//!
//! Two fixes cover it, each sufficient, both kept:
//! - `ChaosController::step` passes retired participants through ungated
//!   (and unrecorded, to keep trace replay deterministic), and
//! - the containment catch site calls `crash_recovered()` *before* any
//!   quarantine bookkeeping.
//!
//! Because the failure mode is a silent hang, the regression runs the whole
//! scenario on a helper thread and fails via watchdog timeout instead of
//! hanging the suite.

use std::sync::mpsc;
use std::time::Duration;

use gfsl::chaos::{ChaosController, ChaosOptions};
use gfsl::{CrashPoint, Gfsl, GfslParams, TeamSize};

/// Deadline generous enough for a debug-build chaos run (the run itself
/// takes well under a second); a wedged turnstile exhausts it.
const WATCHDOG: Duration = Duration::from_secs(60);

#[test]
fn contained_crash_with_live_peers_does_not_wedge_the_turnstile() {
    let (tx, rx) = mpsc::channel();
    let runner = std::thread::spawn(move || {
        let list = Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            pool_chunks: 1 << 12,
            contain: true,
            ..Default::default()
        })
        .unwrap();

        // Two interleaved participants; participant hitting the first
        // split-publish dies there. Containment catches the kill, and its
        // quarantine bookkeeping runs while the participant is still
        // retired from the schedule — the exact wedge window.
        let ctl = ChaosController::new(
            2,
            ChaosOptions {
                seed: 0x7ED_0FF,
                panic_at: Some((CrashPoint::SplitPublish, 1)),
                max_stall_turns: 0,
                ..Default::default()
            },
        );

        let crashes = std::thread::scope(|s| {
            let workers: Vec<_> = (0..2)
                .map(|t| {
                    let probe = ctl.probe(t);
                    let list = &list;
                    s.spawn(move || {
                        let mut h = list.handle_with(probe);
                        let mut crashed = 0u32;
                        // Disjoint key ranges; enough inserts per thread
                        // that each fills chunks and splits repeatedly,
                        // so the survivor keeps stepping the turnstile
                        // long after the victim's crash.
                        for k in 1..=60u32 {
                            match h.try_insert(1000 * t as u32 + k, k) {
                                Ok(_) => {}
                                // The victim's crash surfaces as `Crashed`;
                                // the survivor's inserts may also abort with
                                // `Quarantined` when they route through the
                                // crashed op's quarantined chunks — fine,
                                // both keep the worker stepping.
                                Err(gfsl::Error::Aborted(a)) => {
                                    if a.reason == gfsl::AbortReason::Crashed {
                                        crashed += 1;
                                    }
                                }
                                Err(e) => panic!("unexpected error {e}"),
                            }
                        }
                        crashed
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("containment keeps workers alive"))
                .sum::<u32>()
        });

        assert_eq!(crashes, 1, "exactly one injected crash must surface");
        assert!(!list.is_poisoned(), "containment replaces poisoning");

        // Post-crash health: repair drains the quarantine and the full
        // validation walk passes, proving the revived participant finished
        // its remaining ops normally.
        let stats = list.handle().repair_quarantine();
        assert_eq!(stats.quarantine_depth, 0);
        list.assert_valid();
        let mut h = list.handle();
        assert!(h.contains(1), "thread 0 keyspace reachable");
        assert!(h.contains(1001), "thread 1 keyspace reachable");

        tx.send(()).unwrap();
    });

    rx.recv_timeout(WATCHDOG).expect(
        "turnstile wedged: a retired participant parked in ChaosController::step \
         (or containment quarantined before crash_recovered) and the schedule \
         never granted it a turn",
    );
    runner.join().expect("runner thread itself must not panic");
}

#[test]
fn retired_probe_steps_pass_through_ungated() {
    // Unit-level counterpart, directly on the controller: with one of two
    // participants retired and the other never stepping, the retiree's
    // accesses must return immediately instead of waiting for a turn that
    // `choose` will never grant. Run under the same watchdog discipline.
    let (tx, rx) = mpsc::channel();
    let runner = std::thread::spawn(move || {
        let ctl = ChaosController::new(2, ChaosOptions::default());
        ctl.retire(0);
        let mut probe = ctl.probe(0);
        // Would park forever before the passthrough fix.
        for _ in 0..1000 {
            gfsl::MemProbe::lane_read(&mut probe, 0xDEAD);
        }
        tx.send(()).unwrap();
    });
    rx.recv_timeout(WATCHDOG)
        .expect("retired participant parked in the turnstile");
    runner.join().unwrap();
}
