//! [`DurableCluster`]: the durability tier over the key-range-sharded
//! multi-GFSL engine.
//!
//! ## Static WAL lanes, not per-shard logs
//!
//! The cluster reshards: splits and live migration move key ranges between
//! shards, so a log *per shard* would have to move records between logs
//! (or impose cross-log ordering) whenever the shard map changes. Instead
//! the durable cluster logs into `n_lanes` **static** lanes — lane of a
//! key is `key % n_lanes`, fixed for the lifetime of the directory. Every
//! op on a given key lands in one lane in apply order, and because lanes
//! own disjoint key sets there is *no* cross-lane ordering to preserve:
//! each lane is an independent LSN space, synced independently, replayed
//! in any interleaving.
//!
//! ## Checkpoint cut discipline
//!
//! The checkpointer reads every lane's `last_lsn` **before** taking the
//! consistent cluster snapshot. Apply happens before log, so a write can
//! be in the snapshot yet have `lsn > cut` — replayed redundantly, which
//! the set-like ops absorb (see [`crate::engine`] module docs). The
//! reverse — a write with `lsn ≤ cut` missing from the snapshot — cannot
//! happen with cuts read first, and that is the direction that would lose
//! data. The manifest records the per-lane cuts, the shard-map epoch, and
//! every shard's key-range bounds, so recovery restores the same shard
//! layout before replaying each lane's tail.

use std::path::PathBuf;

use gfsl::GfslParams;
use gfsl_cluster::{Cluster, ClusterSnapshot};
use gfsl_serve::DurabilityContract;

use crate::ckpt::{self, Manifest};
use crate::engine::RecoveryReport;
use crate::error::{OpError, RecoverError};
use crate::hook::Failpoints;
use crate::wal::{self, Wal, WalOp};

/// Shape of a durable cluster's on-disk footprint.
#[derive(Debug, Clone)]
pub struct DurableClusterConfig {
    /// Root directory; lane `i` logs into `<dir>/wal/lane-<i>`,
    /// checkpoints live in `<dir>/ckpt`.
    pub dir: PathBuf,
    /// What an acknowledgement promises, per lane.
    pub contract: DurabilityContract,
    /// Records per WAL segment before rotation.
    pub seg_records: u32,
    /// Published checkpoints retained.
    pub ckpt_keep: usize,
    /// Static WAL lane count — fixed for the directory's lifetime; reopen
    /// with the same value.
    pub n_lanes: usize,
    /// Initial shard count (fresh creates only; recovery restores the
    /// checkpointed layout).
    pub n_shards: usize,
    /// Working key range (fresh creates only).
    pub key_range: u32,
    /// Structural parameters for every shard.
    pub params: GfslParams,
}

impl DurableClusterConfig {
    /// Defaults: fsync, 1024-record segments, 2 checkpoints, 4 lanes,
    /// 4 shards over keys `1..=1_000_000`.
    pub fn new(dir: impl Into<PathBuf>) -> DurableClusterConfig {
        DurableClusterConfig {
            dir: dir.into(),
            contract: DurabilityContract::Synced,
            seg_records: 1024,
            ckpt_keep: 2,
            n_lanes: 4,
            n_shards: 4,
            key_range: 1_000_000,
            params: GfslParams::default(),
        }
    }

    fn lane_dir(&self, lane: usize) -> PathBuf {
        self.dir.join("wal").join(format!("lane-{lane:04}"))
    }

    fn ckpt_dir(&self) -> PathBuf {
        self.dir.join("ckpt")
    }
}

/// A sharded cluster + per-lane WALs + manifest-published checkpoints.
pub struct DurableCluster {
    cluster: Cluster,
    lanes: Vec<Wal>,
    ckpt_dir: PathBuf,
    ckpt_keep: usize,
    contract: DurabilityContract,
    /// Failpoints the durable path reports to (chaos soak entry point).
    pub hook: Failpoints,
    ckpt_seq: u64,
}

impl DurableCluster {
    /// Create a fresh durable cluster (empty shards, empty lanes).
    pub fn create(cfg: &DurableClusterConfig) -> Result<DurableCluster, RecoverError> {
        assert!(cfg.n_lanes >= 1, "need at least one WAL lane");
        let cluster = Cluster::prefilled(
            cfg.params,
            cfg.n_shards,
            cfg.key_range,
            std::iter::empty::<(u32, u32)>(),
        )
        .map_err(RecoverError::Rebuild)?;
        let lanes = (0..cfg.n_lanes)
            .map(|i| Wal::create(cfg.lane_dir(i), cfg.contract, cfg.seg_records))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(DurableCluster {
            cluster,
            lanes,
            ckpt_dir: cfg.ckpt_dir(),
            ckpt_keep: cfg.ckpt_keep.max(1),
            contract: cfg.contract,
            hook: Failpoints::Off,
            ckpt_seq: 0,
        })
    }

    /// Recover a cluster from `cfg.dir`: newest valid checkpoint (shard
    /// layout restored from its manifest), per-lane torn-tail repair and
    /// gap checks, per-lane tail replay, full validation walk.
    pub fn open(
        cfg: &DurableClusterConfig,
    ) -> Result<(DurableCluster, RecoveryReport), RecoverError> {
        assert!(cfg.n_lanes >= 1, "need at least one WAL lane");
        let mut report = RecoveryReport {
            swept_temps: ckpt::clean_temps(&cfg.ckpt_dir())?,
            ..RecoveryReport::default()
        };

        let scan = ckpt::load_latest(&cfg.ckpt_dir())?;
        report.checkpoint_fallbacks = scan.fallbacks;
        let (cuts, bounds, pairs) = match scan.loaded {
            Some(loaded) => {
                report.checkpoint_seq = Some(loaded.manifest.seq);
                report.checkpoint_pairs = loaded.manifest.n_pairs;
                if loaded.manifest.lane_cuts.len() != cfg.n_lanes {
                    return Err(RecoverError::Invalid(format!(
                        "checkpoint has {} WAL lanes, config says {} — lane \
                         count is fixed per directory",
                        loaded.manifest.lane_cuts.len(),
                        cfg.n_lanes
                    )));
                }
                (
                    loaded.manifest.lane_cuts.clone(),
                    loaded.manifest.shard_bounds.clone(),
                    loaded.pairs,
                )
            }
            None => (vec![0; cfg.n_lanes], Vec::new(), Vec::new()),
        };
        let ckpt_seq = report.checkpoint_seq.unwrap_or(0);

        // Restore the checkpointed shard layout, or the configured fresh
        // layout when starting from nothing.
        let cluster = if bounds.is_empty() {
            Cluster::prefilled(cfg.params, cfg.n_shards, cfg.key_range, pairs)
        } else {
            let interior: Vec<u32> = bounds.iter().skip(1).map(|&(lo, _)| lo).collect();
            Cluster::prefilled_with_bounds(cfg.params, &interior, pairs)
        }
        .map_err(RecoverError::Rebuild)?;

        // Scan, gap-check, and replay each lane independently — disjoint
        // key ownership means no cross-lane ordering exists to violate.
        let mut lanes = Vec::with_capacity(cfg.n_lanes);
        for (lane, &cut) in cuts.iter().enumerate() {
            let lane_scan = wal::scan_wal(&cfg.lane_dir(lane))?;
            report.truncated_bytes += lane_scan.truncated_bytes;
            report.removed_torn_segments += lane_scan.removed_torn_segments;
            check_lane_reach(&lane_scan, cut)?;
            for r in lane_scan.records.iter().filter(|r| r.lsn > cut) {
                let effective = match r.op {
                    WalOp::Put { key, val } => cluster.insert(key, val),
                    WalOp::Del { key } => cluster.remove(key),
                }
                .map_err(RecoverError::Rebuild)?;
                report.replayed += 1;
                report.redundant_replays += u64::from(!effective);
            }
            let lane_wal =
                Wal::resume(cfg.lane_dir(lane), cfg.contract, cfg.seg_records, &lane_scan, cut)?;
            report.last_lsn = report.last_lsn.max(lane_wal.last_lsn());
            lanes.push(lane_wal);
        }

        let violations = cluster.validate();
        if !violations.is_empty() {
            let (shard, v) = &violations[0];
            return Err(RecoverError::Invalid(format!(
                "{} shards with violations, first: shard {shard}: {:?}",
                violations.len(),
                v[0]
            )));
        }
        report.recovered_keys = cluster.len() as u64;

        Ok((
            DurableCluster {
                cluster,
                lanes,
                ckpt_dir: cfg.ckpt_dir(),
                ckpt_keep: cfg.ckpt_keep.max(1),
                contract: cfg.contract,
                hook: Failpoints::Off,
                ckpt_seq,
            },
            report,
        ))
    }

    /// The underlying cluster (reads, resharding, migration, validation).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Which lane owns `key`, for the directory's lifetime.
    pub fn lane_of(&self, key: u32) -> usize {
        key as usize % self.lanes.len()
    }

    /// Insert `key → value`; `Ok(true)` — durable on its lane — iff the
    /// key was absent.
    pub fn insert(&mut self, key: u32, value: u32) -> Result<bool, OpError> {
        let applied = self.cluster.insert(key, value)?;
        if applied {
            let lane = self.lane_of(key);
            self.lanes[lane].append(&[WalOp::Put { key, val: value }], &mut self.hook)?;
        }
        Ok(applied)
    }

    /// Remove `key`; `Ok(true)` — durable — iff the key was present.
    pub fn remove(&mut self, key: u32) -> Result<bool, OpError> {
        let applied = self.cluster.remove(key)?;
        if applied {
            let lane = self.lane_of(key);
            self.lanes[lane].append(&[WalOp::Del { key }], &mut self.hook)?;
        }
        Ok(applied)
    }

    /// Read `key` (no durability interaction).
    pub fn get(&self, key: u32) -> Result<Option<u32>, OpError> {
        Ok(self.cluster.get(key)?)
    }

    /// Publish a checkpoint: per-lane cuts read first, then a consistent
    /// cluster snapshot, then manifest publication and per-lane pruning.
    pub fn checkpoint(&mut self) -> std::io::Result<Manifest> {
        // Cuts BEFORE the snapshot: apply precedes log, so reading cuts
        // first can only over-include (redundant replay, absorbed), never
        // under-include (lost writes).
        let cuts: Vec<u64> = self.lanes.iter().map(|w| w.last_lsn()).collect();
        let snap: ClusterSnapshot = self.cluster.snapshot();
        let shard_bounds: Vec<(u32, u32)> =
            snap.cuts.iter().map(|c| (c.lo, c.hi)).collect();
        // With mvcc on the snapshot is a version-pinned cut; record the
        // per-shard pinned versions so the manifest says which cut
        // discipline produced the data file (empty = legacy write-held).
        let shard_versions: Vec<u64> = if snap.pinned() {
            snap.cuts.iter().map(|c| c.version).collect()
        } else {
            Vec::new()
        };
        let manifest = ckpt::write_checkpoint(
            &self.ckpt_dir,
            &Manifest {
                seq: self.ckpt_seq + 1,
                epoch: snap.epoch,
                lane_cuts: cuts.clone(),
                shard_bounds,
                n_pairs: 0,
                n_pages: 0,
                shard_versions,
            },
            &snap.pairs,
            self.contract,
            &mut self.hook,
        )?;
        self.ckpt_seq = manifest.seq;
        ckpt::prune_old(&self.ckpt_dir, self.ckpt_keep)?;
        // Prune each lane only to the oldest RETAINED checkpoint's cut, so
        // fallback from a damaged newer checkpoint can still replay.
        let mut safe_cuts = cuts;
        for seq in ckpt::list_checkpoints(&self.ckpt_dir)? {
            if let Some(m) = ckpt::read_manifest(&self.ckpt_dir, seq) {
                for (safe, &c) in safe_cuts.iter_mut().zip(m.lane_cuts.iter()) {
                    *safe = (*safe).min(c);
                }
            }
        }
        for (lane, &cut) in safe_cuts.iter().enumerate() {
            self.lanes[lane].prune_upto(cut, &mut self.hook)?;
        }
        Ok(manifest)
    }

    /// Sum of per-lane lifetime counters.
    pub fn wal_stats(&self) -> wal::WalStats {
        let mut total = wal::WalStats::default();
        for w in &self.lanes {
            total.group_commits += w.stats.group_commits;
            total.records += w.stats.records;
            total.syncs += w.stats.syncs;
            total.rotations += w.stats.rotations;
            total.pruned_segments += w.stats.pruned_segments;
        }
        total
    }
}

impl std::fmt::Debug for DurableCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableCluster")
            .field("lanes", &self.lanes.len())
            .field("ckpt_seq", &self.ckpt_seq)
            .finish_non_exhaustive()
    }
}

fn check_lane_reach(scan: &wal::WalScanned, cut: u64) -> Result<(), RecoverError> {
    let first_available = scan
        .records
        .first()
        .map(|r| r.lsn)
        .or_else(|| scan.tail.map(|t| t.base_lsn));
    if let Some(first_available) = first_available {
        if first_available > cut + 1 {
            return Err(RecoverError::WalGap {
                need_from: cut + 1,
                first_available,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::destroy;

    fn cfg(name: &str) -> DurableClusterConfig {
        let dir =
            std::env::temp_dir().join(format!("gfsl_dclu_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DurableClusterConfig {
            seg_records: 8,
            n_lanes: 3,
            n_shards: 4,
            key_range: 10_000,
            ..DurableClusterConfig::new(dir)
        }
    }

    #[test]
    fn cluster_write_reopen_recovers_across_lanes() {
        let cfg = cfg("roundtrip");
        let mut dc = DurableCluster::create(&cfg).unwrap();
        for k in 1..=300u32 {
            assert!(dc.insert(k * 7 % 9973 + 1, k).unwrap());
        }
        let expect = dc.cluster().pairs();
        drop(dc);

        let (dc, report) = DurableCluster::open(&cfg).unwrap();
        assert_eq!(report.replayed, 300);
        assert_eq!(report.recovered_keys, 300);
        assert_eq!(dc.cluster().pairs(), expect);
        dc.cluster().assert_valid();
        destroy(&cfg.dir).unwrap();
    }

    #[test]
    fn checkpoint_restores_shard_layout_and_bounds_replay() {
        let cfg = cfg("ckpt");
        let mut dc = DurableCluster::create(&cfg).unwrap();
        for k in 1..=200u32 {
            dc.insert(k * 31 % 9007 + 1, k).unwrap();
        }
        let bounds_before = dc.cluster().bounds();
        let m = dc.checkpoint().unwrap();
        assert_eq!(m.lane_cuts.len(), 3);
        assert_eq!(m.shard_bounds, bounds_before);
        for k in 500..540u32 {
            dc.insert(k * 13 + 100_000 % 9973, k).unwrap();
        }
        let expect = dc.cluster().pairs();
        drop(dc);

        let (dc, report) = DurableCluster::open(&cfg).unwrap();
        assert_eq!(report.checkpoint_seq, Some(1));
        assert_eq!(report.replayed, 40, "only post-cut lane tails replay");
        assert_eq!(dc.cluster().bounds(), bounds_before, "layout restored");
        assert_eq!(dc.cluster().pairs(), expect);
        dc.cluster().assert_valid();
        destroy(&cfg.dir).unwrap();
    }

    #[test]
    fn mvcc_checkpoints_are_version_pinned_and_recover() {
        let cfg = DurableClusterConfig {
            params: GfslParams {
                mvcc: true,
                ..GfslParams::default()
            },
            ..cfg("mvcc")
        };
        let mut dc = DurableCluster::create(&cfg).unwrap();
        for k in 1..=200u32 {
            dc.insert(k * 17 % 9901 + 1, k).unwrap();
        }
        let m = dc.checkpoint().unwrap();
        assert_eq!(
            m.shard_versions.len(),
            m.shard_bounds.len(),
            "pinned cut records one version per shard"
        );
        assert!(
            m.shard_versions.iter().all(|&v| v != 0),
            "version clocks start at 1: {:?}",
            m.shard_versions
        );
        // The manifest (with its optional versions section) survives the
        // disk roundtrip: reopen reads it back and recovery replays only
        // the post-cut tails.
        for k in 300..330u32 {
            dc.insert(k * 37 + 50_000, k).unwrap();
        }
        let expect = dc.cluster().pairs();
        drop(dc);

        let (dc, report) = DurableCluster::open(&cfg).unwrap();
        assert_eq!(report.checkpoint_seq, Some(1));
        assert_eq!(report.replayed, 30, "only post-cut lane tails replay");
        assert_eq!(dc.cluster().pairs(), expect);
        dc.cluster().assert_valid();
        destroy(&cfg.dir).unwrap();
    }

    #[test]
    fn lane_count_mismatch_is_refused() {
        let cfg = cfg("lanes");
        let mut dc = DurableCluster::create(&cfg).unwrap();
        for k in 1..=50u32 {
            dc.insert(k, k).unwrap();
        }
        dc.checkpoint().unwrap();
        drop(dc);
        let wrong = DurableClusterConfig {
            n_lanes: 5,
            ..cfg.clone()
        };
        match DurableCluster::open(&wrong) {
            Err(RecoverError::Invalid(msg)) => assert!(msg.contains("lane")),
            other => panic!("expected Invalid, got {other:?}"),
        }
        destroy(&cfg.dir).unwrap();
    }
}
