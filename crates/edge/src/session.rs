//! Per-connection session state: handshake, streaming frame decode,
//! buffered writes, read-your-writes tracking, and progress timestamps for
//! the slow-client (slowloris) guard.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use gfsl_serve::Reply;
use gfsl_workload::ServeOp;

use crate::proto::{self, DecodeError, Req, Resp};

/// How much a session reads per poll pass, bytes.
const READ_CHUNK: usize = 16 * 1024;

/// Inbound buffer high-water mark: once this much undecoded input is
/// sitting in `rbuf`, the session stops reading the socket and lets TCP
/// backpressure throttle the peer (the kernel buffer fills, the peer's
/// writes stall). Keeps a firehose client from ballooning server memory.
const RBUF_HIGH: usize = 64 * 1024;

/// What one poll pass over a session's socket produced.
#[derive(Debug, Default)]
pub struct SessionIo {
    /// Requests decoded this pass, in wire order.
    pub reqs: Vec<(u64, Req)>,
    /// The connection hit EOF or a fatal socket error.
    pub closed: bool,
    /// The peer broke framing (a typed [`Resp::Proto`] was queued; the
    /// session must be flushed once and then shed).
    pub proto_error: Option<DecodeError>,
}

/// One accepted connection owned by a worker thread.
pub struct Session {
    stream: TcpStream,
    /// Undecoded inbound bytes (at most one partial frame after a pass).
    rbuf: Vec<u8>,
    /// Encoded outbound bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written.
    wpos: usize,
    handshaken: bool,
    /// Set once a protocol violation queued the final `Proto` frame: the
    /// session closes as soon as that frame is flushed (or times out).
    pub dying: bool,
    /// Last instant the connection made byte progress in either direction.
    pub last_progress: Instant,
    /// Requests admitted to the batcher but not yet answered.
    pub inflight: usize,
    /// The session's acknowledged writes: key → value it last wrote
    /// (`None` = deleted). What read-your-writes is checked against.
    last_writes: HashMap<u32, Option<u32>>,
    /// Reads that contradicted the session's own acknowledged writes.
    /// Exact under disjoint per-session key namespaces; cross-session
    /// writers can legitimately outdate an entry (see module tests).
    pub ryw_violations: u64,
}

impl Session {
    /// Wrap an accepted stream (worker sets it nonblocking first) and queue
    /// the server hello.
    pub fn new(stream: TcpStream, now: Instant) -> Session {
        let mut wbuf = Vec::with_capacity(1024);
        proto::encode_hello(&mut wbuf);
        Session {
            stream,
            rbuf: Vec::with_capacity(1024),
            wbuf,
            wpos: 0,
            handshaken: false,
            dying: false,
            last_progress: now,
            inflight: 0,
            last_writes: HashMap::new(),
            ryw_violations: 0,
        }
    }

    /// Drain readable bytes (up to the buffer high-water mark) and decode
    /// at most `max_frames` complete frames; surplus input stays buffered
    /// for later passes — and, past the high-water mark, in the kernel's
    /// socket buffer, where TCP backpressure throttles the peer. Never
    /// blocks.
    pub fn poll_read(&mut self, now: Instant, max_frames: usize) -> SessionIo {
        let mut io = SessionIo::default();
        let mut chunk = [0u8; READ_CHUNK];
        while self.rbuf.len() < RBUF_HIGH {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    io.closed = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_progress = now;
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    io.closed = true;
                    break;
                }
            }
        }
        if self.dying {
            // Already poisoned: drop whatever else the peer sends.
            self.rbuf.clear();
            return io;
        }
        if !self.handshaken {
            if self.rbuf.len() < proto::HELLO_LEN {
                return io;
            }
            match proto::check_hello(&self.rbuf) {
                Ok(()) => {
                    self.rbuf.drain(..proto::HELLO_LEN);
                    self.handshaken = true;
                }
                Err(e) => {
                    self.fail_protocol(e, &mut io);
                    return io;
                }
            }
        }
        let mut at = 0;
        while io.reqs.len() < max_frames {
            match proto::decode_req(&self.rbuf[at..]) {
                Ok((id, req, used)) => {
                    io.reqs.push((id, req));
                    at += used;
                }
                Err(DecodeError::Incomplete) => break,
                Err(e) => {
                    self.fail_protocol(e, &mut io);
                    // fail_protocol cleared rbuf; nothing left to drain.
                    return io;
                }
            }
        }
        self.rbuf.drain(..at);
        io
    }

    /// Complete frames already buffered but not yet decoded (a nonzero
    /// value means the session has work queued even if its socket is
    /// quiet).
    pub fn has_buffered_input(&self) -> bool {
        !self.rbuf.is_empty()
    }

    fn fail_protocol(&mut self, e: DecodeError, io: &mut SessionIo) {
        // One typed error frame, then the connection is shed: a peer that
        // broke framing can never resynchronize, so there is nothing to
        // parse after this point.
        Resp::Proto { code: e.code() }.encode(0, &mut self.wbuf);
        self.dying = true;
        self.rbuf.clear();
        io.proto_error = Some(e);
    }

    /// Queue one response frame.
    pub fn push_resp(&mut self, req_id: u64, resp: &Resp) {
        resp.encode(req_id, &mut self.wbuf);
    }

    /// Record the outcome of one of this session's engine requests: updates
    /// the read-your-writes table on acknowledged writes and checks it on
    /// reads. Must be called in completion order (which the per-session
    /// pipeline guarantees).
    pub fn observe_reply(&mut self, op: ServeOp, reply: &Reply) {
        match (op, reply) {
            (ServeOp::Insert(k, v), Reply::Inserted(true)) => {
                self.last_writes.insert(k, Some(v));
            }
            (ServeOp::Delete(k), Reply::Deleted(true)) => {
                self.last_writes.insert(k, None);
            }
            (ServeOp::PopMin, Reply::Popped(Some((k, _)))) => {
                self.last_writes.insert(*k, None);
            }
            (ServeOp::Get(k), Reply::Got(got)) => {
                if let Some(expect) = self.last_writes.get(&k) {
                    // Presence must match; the value may legitimately have
                    // been rewritten by another session (delete + reinsert),
                    // so only existence contradicts read-your-writes.
                    if expect.is_some() != got.is_some() {
                        self.ryw_violations += 1;
                    }
                }
            }
            _ => {}
        }
    }

    /// Flush queued output. Never blocks; returns `false` when the socket
    /// died. Compacts the write buffer once fully drained.
    pub fn poll_write(&mut self, now: Instant) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.wpos += n;
                    self.last_progress = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        true
    }

    /// Unflushed output bytes.
    pub fn pending_out(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// True when the peer owes the server bytes (a partial frame sits in
    /// the read buffer) or refuses to take them (unflushed output) — the
    /// states the slow-client timeout applies to. A quiet session with
    /// clean buffers is just an idle client thinking.
    pub fn stalled(&self) -> bool {
        !self.rbuf.is_empty() || self.pending_out() > 0 || !self.handshaken || self.dying
    }

    /// A dying session is dropped once its final error frame went out (or
    /// it cannot accept even that).
    pub fn dead(&self) -> bool {
        self.dying && self.pending_out() == 0 && self.inflight == 0
    }
}
