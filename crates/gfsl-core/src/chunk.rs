//! Chunk layout: entry packing, lock states, and the team-wide chunk view.
//!
//! A chunk of size `N` (Fig. 3.1 of the paper) is `N` consecutive 64-bit
//! words:
//!
//! ```text
//!   index:   0 .. N-3            N-2               N-1
//!   entry:   DATA (key,value)    NEXT (max,next)   LOCK
//!   low 32:  key                 max key           lock state
//!   high 32: value / down-ptr    next chunk index  (unused)
//! ```
//!
//! Data entries are sorted ascending with `EMPTY` (∞) entries grouped at the
//! end. The first chunk of every level holds the `-∞` key in entry 0. The
//! last chunk of every level has `max = ∞` and `next = NIL`.

use gfsl_gpu_mem::probe::CrashPoint;
use gfsl_gpu_mem::{MemProbe, WordAddr, WordPool};
use gfsl_simt::{LaneId, Lanes, Team, WARP_SIZE};

/// The `-∞` key stored in the first chunk of every level. Distinct from all
/// user keys.
pub const KEY_NEG_INF: u32 = 0;

/// The `∞` key: marks EMPTY data entries and the max field of the last chunk
/// in a level. Distinct from all user keys.
pub const KEY_INF: u32 = u32::MAX;

/// Null chunk pointer (the next field of the last chunk in a level).
pub const NIL: u32 = u32::MAX;

/// Lock-word state (low bits): chunk is unlocked.
pub const LOCK_UNLOCKED: u64 = 0;
/// Lock-word state (low bits): chunk is locked by some team.
pub const LOCK_LOCKED: u64 = 1;
/// Lock-word state (low bits): chunk has been merged away. Terminal — a
/// zombie's contents never change again and the chunk is never unlocked or
/// reused.
pub const LOCK_ZOMBIE: u64 = 2;
/// Mask selecting the state bits of a lock word. The remaining 62 bits are
/// a *release version*: every unlock bumps it, so two equal reads of an
/// unlocked lock word bracketing a chunk read certify that no writer held
/// the chunk (hence no entry moved) anywhere between them. Lock-free
/// readers use this to certify torn-read-hazardous `NotFound` answers (see
/// `search_lateral`); the shift loops alone cannot protect a key that moves
/// *toward* a concurrently scanning reader.
pub const LOCK_STATE_MASK: u64 = 0b11;
/// One release-version increment (the version lives above the state bits).
pub const LOCK_VERSION_UNIT: u64 = 0b100;

/// The state bits of a lock word.
#[inline]
pub const fn lock_state(word: u64) -> u64 {
    word & LOCK_STATE_MASK
}

/// Is `k` usable as a user key? (`-∞` and `∞` are reserved.)
#[inline]
pub const fn is_user_key(k: u32) -> bool {
    k != KEY_NEG_INF && k != KEY_INF
}

/// A packed 8-byte chunk entry: key in the low 32 bits, value (or pointer)
/// in the high 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry(pub u64);

impl Entry {
    /// An EMPTY (∞) data entry.
    pub const EMPTY: Entry = Entry::new(KEY_INF, 0);

    /// Pack a key/value pair.
    #[inline]
    pub const fn new(key: u32, val: u32) -> Entry {
        Entry(((val as u64) << 32) | key as u64)
    }

    /// The key half.
    #[inline]
    pub const fn key(self) -> u32 {
        self.0 as u32
    }

    /// The value half (a user value at level 0, a down-pointer above, the
    /// next-pointer in the NEXT entry).
    #[inline]
    pub const fn val(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Is this an EMPTY data entry?
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.key() == KEY_INF
    }
}

/// A chunk's address plus the team geometry needed to interpret it.
#[derive(Debug, Clone, Copy)]
pub struct ChunkRef {
    /// Base word address of the chunk in the pool.
    pub base: WordAddr,
}

impl ChunkRef {
    /// Word address of entry `i`.
    #[inline]
    pub fn entry_addr(self, i: usize) -> WordAddr {
        self.base + i as u32
    }
}

/// The team-wide registers holding one chunk read: lane `i` holds entry `i`.
///
/// This is the result of the single lockstep "read the whole chunk"
/// instruction: each lane's load is individually atomic, the combination is
/// a point-in-time-per-word snapshot only — exactly what the GPU provides
/// and what the algorithm is designed to tolerate.
#[derive(Debug, Clone, Copy)]
pub struct ChunkView {
    regs: Lanes<u64>,
}

impl ChunkView {
    /// Read all `N` entries of the chunk at `ch` in one lockstep team read.
    #[inline]
    pub fn read<P: MemProbe>(team: &Team, pool: &WordPool, probe: &mut P, ch: ChunkRef) -> Self {
        let mut addrs = [0u32; WARP_SIZE];
        for (lane, a) in addrs.iter_mut().enumerate().take(team.lanes()) {
            *a = ch.entry_addr(lane);
        }
        probe.warp_read(&addrs[..team.lanes()]);
        let regs = team.each_lane(|lane| pool.read(ch.entry_addr(lane)));
        ChunkView { regs }
    }

    /// Build a view from lanes already captured elsewhere (an mvcc version
    /// pre-image): versioned readers decode a chain image with the same
    /// ballot machinery a live chunk read uses.
    #[inline]
    pub(crate) fn from_lanes(team: &Team, lanes: &[u64]) -> Self {
        debug_assert_eq!(lanes.len(), team.lanes());
        ChunkView {
            regs: team.each_lane(|lane| lanes[lane]),
        }
    }

    /// Entry held by lane `lane`.
    #[inline]
    pub fn entry(&self, lane: LaneId) -> Entry {
        Entry(self.regs.get(lane))
    }

    /// The chunk's max field (key half of the NEXT entry).
    #[inline]
    pub fn max(&self, team: &Team) -> u32 {
        self.entry(team.next_lane()).key()
    }

    /// The chunk's next pointer (value half of the NEXT entry), `NIL` for
    /// the last chunk in a level.
    #[inline]
    pub fn next(&self, team: &Team) -> u32 {
        self.entry(team.next_lane()).val()
    }

    /// Raw lock word.
    #[inline]
    pub fn lock_word(&self, team: &Team) -> u64 {
        self.regs.get(team.lock_lane())
    }

    /// Was the chunk a zombie at read time?
    #[inline]
    pub fn is_zombie(&self, team: &Team) -> bool {
        lock_state(self.lock_word(team)) == LOCK_ZOMBIE
    }

    /// Was the chunk locked at read time?
    #[inline]
    pub fn is_locked(&self, team: &Team) -> bool {
        lock_state(self.lock_word(team)) == LOCK_LOCKED
    }

    /// Number of non-EMPTY data entries (cooperative `numKeysInChunk`).
    #[inline]
    pub fn num_keys(&self, team: &Team) -> u32 {
        team.ballot(|lane| team.is_data_lane(lane) && !self.entry(lane).is_empty())
            .count()
    }

    /// Does the chunk's data array contain `k`? (cooperative
    /// `chunkContains`).
    #[inline]
    pub fn contains_key(&self, team: &Team, k: u32) -> bool {
        self.lane_of_key(team, k).is_some()
    }

    /// The *highest* data lane holding `k`, if any. Highest matters: during
    /// shifts a key may transiently appear twice and the rightmost copy is
    /// the authoritative one (paper §4.2.2).
    #[inline]
    pub fn lane_of_key(&self, team: &Team, k: u32) -> Option<LaneId> {
        team.ballot(|lane| team.is_data_lane(lane) && self.entry(lane).key() == k)
            .highest()
    }

    /// Is the chunk *not* enclosing `k`: a zombie, or `max < k`
    /// (cooperative `chunkNotEnclosing`).
    #[inline]
    pub fn not_enclosing(&self, team: &Team, k: u32) -> bool {
        self.is_zombie(team) || self.max(team) < k
    }

    /// Data entries as `(lane, entry)` pairs, non-EMPTY only.
    pub fn live_entries<'a>(&'a self, team: &'a Team) -> impl Iterator<Item = (LaneId, Entry)> + 'a {
        (0..team.dsize())
            .map(|lane| (lane, self.entry(lane)))
            .filter(|(_, e)| !e.is_empty())
    }

    /// The raw data words (lanes `0..DSIZE`) as a slice, for the vectorized
    /// ballot kernels ([`gfsl_simt::BallotKernel`]): bit `i` of a kernel mask
    /// over this slice is lane `i`'s vote.
    #[inline]
    pub fn data_words(&self, team: &Team) -> &[u64] {
        &self.regs.as_slice()[..team.dsize()]
    }
}

/// Lock/write-side chunk operations. These are free functions over the pool
/// (rather than methods on a guard type) because the GPU algorithm threads
/// lock ownership through team control flow, not RAII — e.g. the bottom
/// chunk stays locked across an entire multi-level insert while other chunks
/// lock and unlock around it, and a merge converts a held lock into a
/// terminal zombie marker.
pub mod ops {
    use super::*;

    /// Word address of a chunk's lock entry.
    #[inline]
    pub fn lock_addr(team: &Team, ch: ChunkRef) -> WordAddr {
        ch.entry_addr(team.lock_lane())
    }

    /// Word address of a chunk's NEXT entry.
    #[inline]
    pub fn next_addr(team: &Team, ch: ChunkRef) -> WordAddr {
        ch.entry_addr(team.next_lane())
    }

    /// One CAS attempt to lock the chunk. The paper's `LockChunkWithCAS`.
    ///
    /// The preliminary plain read fetches the current release version so the
    /// CAS can preserve it; on a GPU this costs nothing extra because
    /// `atomicCAS` returns the old word anyway (a failed blind CAS hands the
    /// team the version to retry with).
    #[inline]
    pub fn try_lock<P: MemProbe>(team: &Team, pool: &WordPool, probe: &mut P, ch: ChunkRef) -> bool {
        let addr = lock_addr(team, ch);
        probe.crash_point(CrashPoint::LockCas);
        probe.atomic(addr);
        let cur = pool.read(addr);
        if lock_state(cur) != LOCK_UNLOCKED {
            return false;
        }
        pool.cas(addr, cur, (cur & !LOCK_STATE_MASK) | LOCK_LOCKED)
            .is_ok()
    }

    /// Release a held lock, bumping the release version so lock-free readers
    /// can certify that a chunk read overlapped no writer.
    #[inline]
    pub fn unlock<P: MemProbe>(team: &Team, pool: &WordPool, probe: &mut P, ch: ChunkRef) {
        let addr = lock_addr(team, ch);
        let cur = pool.read(addr);
        debug_assert_eq!(lock_state(cur), LOCK_LOCKED, "unlocking a chunk we do not hold");
        probe.crash_point(CrashPoint::LockRelease);
        probe.lane_write(addr);
        pool.write(
            addr,
            (cur & !LOCK_STATE_MASK).wrapping_add(LOCK_VERSION_UNIT) | LOCK_UNLOCKED,
        );
    }

    /// Convert a held lock into the terminal zombie marker. The release
    /// version is *preserved*: zombie contents never change again (so reads
    /// of a zombie need no certification), but the version must survive into
    /// any future incarnation of this chunk — reclamation recycles zombie
    /// chunks, and the traversal hint cache relies on per-chunk lock-word
    /// versions being monotonic across incarnations to reject hints that
    /// name a since-recycled chunk.
    #[inline]
    pub fn mark_zombie<P: MemProbe>(team: &Team, pool: &WordPool, probe: &mut P, ch: ChunkRef) {
        let addr = lock_addr(team, ch);
        let cur = pool.read(addr);
        debug_assert_eq!(lock_state(cur), LOCK_LOCKED, "only the lock holder may zombify");
        probe.crash_point(CrashPoint::MergeZombieMark);
        probe.lane_write(addr);
        pool.write(addr, (cur & !LOCK_STATE_MASK) | LOCK_ZOMBIE);
    }

    /// Atomically overwrite data entry `lane` (the paper's per-lane
    /// `AtomicWrite` used by the shift loops).
    #[inline]
    pub fn write_entry<P: MemProbe>(
        pool: &WordPool,
        probe: &mut P,
        ch: ChunkRef,
        lane: LaneId,
        e: Entry,
    ) {
        let addr = ch.entry_addr(lane);
        probe.lane_write(addr);
        pool.write(addr, e.0);
    }

    /// Atomically set the NEXT entry: `(max, next)` in a single 64-bit store.
    /// Publishing a split and lowering a max are each one such store, which
    /// is what keeps lock-free readers consistent.
    #[inline]
    pub fn write_next_field<P: MemProbe>(
        team: &Team,
        pool: &WordPool,
        probe: &mut P,
        ch: ChunkRef,
        max: u32,
        next: u32,
    ) {
        let addr = next_addr(team, ch);
        probe.crash_point(CrashPoint::NextSwing);
        probe.lane_write(addr);
        pool.write(addr, Entry::new(max, next).0);
    }

    /// Read just the NEXT entry (single-lane read; used under lock where a
    /// full team read would be wasted).
    #[inline]
    pub fn read_next_field<P: MemProbe>(
        team: &Team,
        pool: &WordPool,
        probe: &mut P,
        ch: ChunkRef,
    ) -> Entry {
        let addr = next_addr(team, ch);
        probe.lane_read(addr);
        Entry(pool.read(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfsl_gpu_mem::NoProbe;
    use gfsl_simt::TeamSize;

    fn setup() -> (Team, WordPool) {
        (Team::new(TeamSize::Sixteen), WordPool::new(1024))
    }

    fn write_chunk(pool: &WordPool, base: u32, entries: &[(u32, u32)], max: u32, next: u32, lock: u64) {
        let team = Team::new(TeamSize::Sixteen);
        for i in 0..team.dsize() {
            let e = entries.get(i).map(|&(k, v)| Entry::new(k, v)).unwrap_or(Entry::EMPTY);
            pool.write(base + i as u32, e.0);
        }
        pool.write(base + team.next_lane() as u32, Entry::new(max, next).0);
        pool.write(base + team.lock_lane() as u32, lock);
    }

    #[test]
    fn entry_packing_roundtrip() {
        let e = Entry::new(0x1234_5678, 0x9ABC_DEF0);
        assert_eq!(e.key(), 0x1234_5678);
        assert_eq!(e.val(), 0x9ABC_DEF0);
        assert!(!e.is_empty());
        assert!(Entry::EMPTY.is_empty());
        assert_eq!(Entry::EMPTY.key(), KEY_INF);
    }

    #[test]
    fn user_key_range_excludes_sentinels() {
        assert!(!is_user_key(KEY_NEG_INF));
        assert!(!is_user_key(KEY_INF));
        assert!(is_user_key(1));
        assert!(is_user_key(u32::MAX - 1));
    }

    #[test]
    fn view_reads_fields() {
        let (team, pool) = setup();
        write_chunk(&pool, 0, &[(5, 50), (9, 90)], 9, 64, LOCK_UNLOCKED);
        let v = ChunkView::read(&team, &pool, &mut NoProbe, ChunkRef { base: 0 });
        assert_eq!(v.entry(0), Entry::new(5, 50));
        assert_eq!(v.entry(1), Entry::new(9, 90));
        assert!(v.entry(2).is_empty());
        assert_eq!(v.max(&team), 9);
        assert_eq!(v.next(&team), 64);
        assert!(!v.is_zombie(&team));
        assert!(!v.is_locked(&team));
        assert_eq!(v.num_keys(&team), 2);
    }

    #[test]
    fn lane_of_key_prefers_highest_duplicate() {
        let (team, pool) = setup();
        // Simulate a mid-shift chunk: key 7 appears at lanes 2 and 3.
        write_chunk(&pool, 0, &[(3, 0), (5, 0), (7, 0), (7, 1)], 7, NIL, LOCK_LOCKED);
        let v = ChunkView::read(&team, &pool, &mut NoProbe, ChunkRef { base: 0 });
        assert_eq!(v.lane_of_key(&team, 7), Some(3));
        assert_eq!(v.entry(3).val(), 1, "rightmost copy wins");
        assert_eq!(v.lane_of_key(&team, 4), None);
    }

    #[test]
    fn not_enclosing_for_zombie_or_small_max() {
        let (team, pool) = setup();
        write_chunk(&pool, 0, &[(5, 0)], 5, 64, LOCK_UNLOCKED);
        let v = ChunkView::read(&team, &pool, &mut NoProbe, ChunkRef { base: 0 });
        assert!(!v.not_enclosing(&team, 5));
        assert!(!v.not_enclosing(&team, 3));
        assert!(v.not_enclosing(&team, 6));

        write_chunk(&pool, 64, &[(5, 0)], 5, NIL, LOCK_ZOMBIE);
        let z = ChunkView::read(&team, &pool, &mut NoProbe, ChunkRef { base: 64 });
        assert!(z.not_enclosing(&team, 3), "zombies never enclose");
        assert!(z.is_zombie(&team));
    }

    #[test]
    fn lock_unlock_zombie_lifecycle() {
        let (team, pool) = setup();
        let ch = ChunkRef { base: 0 };
        write_chunk(&pool, 0, &[], KEY_INF, NIL, LOCK_UNLOCKED);
        assert!(ops::try_lock(&team, &pool, &mut NoProbe, ch));
        assert!(!ops::try_lock(&team, &pool, &mut NoProbe, ch), "second lock fails");
        ops::unlock(&team, &pool, &mut NoProbe, ch);
        assert!(ops::try_lock(&team, &pool, &mut NoProbe, ch));
        ops::mark_zombie(&team, &pool, &mut NoProbe, ch);
        assert!(!ops::try_lock(&team, &pool, &mut NoProbe, ch), "zombies cannot be locked");
        let v = ChunkView::read(&team, &pool, &mut NoProbe, ch);
        assert!(v.is_zombie(&team));
    }

    #[test]
    fn write_next_field_is_one_word() {
        let (team, pool) = setup();
        let ch = ChunkRef { base: 0 };
        ops::write_next_field(&team, &pool, &mut NoProbe, ch, 42, 128);
        let e = ops::read_next_field(&team, &pool, &mut NoProbe, ch);
        assert_eq!(e.key(), 42);
        assert_eq!(e.val(), 128);
    }

    #[test]
    fn live_entries_skips_empties() {
        let (team, pool) = setup();
        write_chunk(&pool, 0, &[(2, 20), (4, 40), (6, 60)], 6, NIL, LOCK_UNLOCKED);
        let v = ChunkView::read(&team, &pool, &mut NoProbe, ChunkRef { base: 0 });
        let live: Vec<_> = v.live_entries(&team).map(|(l, e)| (l, e.key())).collect();
        assert_eq!(live, vec![(0, 2), (1, 4), (2, 6)]);
    }
}
