//! Offline stand-in for the `serde` crate.
//!
//! Unlike the original marker-only shim, this version carries a real (if
//! deliberately small) serialization surface: [`Serialize`] renders a value
//! into an owned [`Value`] tree, and [`to_json_string`] prints that tree as
//! JSON. The derive macro (see `serde_derive`) walks named-struct fields
//! and emits a field-by-field `serialize_value`; enums and tuple structs
//! fall back to their `Debug` rendering as a JSON string, which is exactly
//! what the workspace's report writers want for unit-variant enums like
//! `BenchKind` or `OpKind`.
//!
//! `Deserialize` remains a marker: nothing in the tree parses serialized
//! data back in, and keeping it inert avoids dragging in a parser. If full
//! serde semantics are ever needed, swap the patch back to crates.io serde.

pub use serde_derive::{Deserialize, Serialize};

/// An owned, ordered JSON-like value tree.
///
/// Objects preserve insertion order (fields serialize in declaration
/// order), which keeps emitted reports diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values print as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Render this tree as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(f) => {
                if f.is_finite() {
                    // Rust's shortest-roundtrip Display is valid JSON for
                    // finite floats (`1` for 1.0, no exponent quirks).
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize a value into a [`Value`] tree.
pub trait Serialize {
    /// Render `self` as an owned [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Marker form of `serde::Deserialize` (still a no-op: nothing in the
/// workspace parses serialized data back in).
pub trait Deserialize<'de>: Sized {}

/// Serialize any value straight to a compact JSON string.
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.serialize_value().to_json()
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_covers_every_variant() {
        let v = Value::Object(vec![
            ("n".into(), Value::Null),
            ("b".into(), Value::Bool(true)),
            ("u".into(), Value::U64(7)),
            ("i".into(), Value::I64(-3)),
            ("f".into(), Value::F64(1.5)),
            ("bad_f".into(), Value::F64(f64::NAN)),
            ("s".into(), Value::Str("a\"b\\c\nd".into())),
            ("a".into(), Value::Array(vec![Value::U64(1), Value::U64(2)])),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"n":null,"b":true,"u":7,"i":-3,"f":1.5,"bad_f":null,"s":"a\"b\\c\nd","a":[1,2]}"#
        );
    }

    #[test]
    fn primitive_impls_round_through_to_json_string() {
        assert_eq!(to_json_string(&42u32), "42");
        assert_eq!(to_json_string(&-1i64), "-1");
        assert_eq!(to_json_string(&2.25f64), "2.25");
        assert_eq!(to_json_string(&true), "true");
        assert_eq!(to_json_string("hi"), "\"hi\"");
        assert_eq!(to_json_string(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json_string(&(1u32, "x".to_string())), "[1,\"x\"]");
        assert_eq!(to_json_string(&Option::<u32>::None), "null");
        assert_eq!(to_json_string(&Some(5u32)), "5");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(to_json_string("\u{1}"), "\"\\u0001\"");
    }
}
