//! Churn memory diagnostic: the sliding-window churn workload driven
//! through the counting probe, sweeping chunk size (team 16 vs 32) and the
//! reclamation window against the modeled GTX-970 L2 — the sim-vs-host
//! cross-check for the locality engine. Not a paper artifact.
//!
//! Each cell reports both sides of the cross-check:
//!
//! * host-side locality counters (finger hit rate, `(max,next)` skim
//!   steps, prefetches issued) from `OpStats`;
//! * simulator-side memory behaviour (L2 hit ratio, miss sectors/op,
//!   prefetch fills and useful-prefetch hits) from the probe's `Traffic`.
//!
//! The window size controls the reclamation high-water mark (a wider
//! window keeps more zombies in flight before the head-edge sweep
//! recycles them), so the sweep shows how chunk format x working-set
//! pressure lands in the cache model, with and without foresight
//! prefetch. The emitted CSV is the committed artifact.

use std::sync::Arc;
use std::time::Instant;

use gfsl::{BallotKernel, Gfsl, GfslParams, Prefetch, TeamSize};
use gfsl_gpu_mem::{CountingProbe, L2Cache};

use super::ExpConfig;
use crate::report::{mops, pct, Table};

/// One churn cell: team size x window x prefetch, instrumented end to end.
struct Cell {
    churn_mops: f64,
    l2_hit: f64,
    sectors_per_op: f64,
    finger_hit: f64,
    skips_per_op: f64,
    pf_issued: u64,
    pf_fills: u64,
    pf_useful: u64,
    reclaimed: u64,
    high_water: u32,
    pool: u32,
}

fn run_cell(cfg: &ExpConfig, team: TeamSize, window: u32, prefetch: Prefetch) -> Cell {
    let pairs = (cfg.mixed_ops() / 4).max(window as usize);
    let mut params = GfslParams {
        team_size: team,
        kernel: BallotKernel::Swar,
        fingers: true,
        prefetch,
        reclaim: true,
        seed: cfg.seed,
        ..Default::default()
    };
    params.pool_chunks = GfslParams::chunks_for(window as u64 * 2, team);
    let pool = params.pool_chunks;
    let list = Gfsl::new(params).unwrap();
    let l2 = Arc::new(L2Cache::gtx970());
    let mut h = list.handle_with(CountingProbe::new(l2));
    for k in 1..=window {
        h.insert(k, k).unwrap();
    }

    let t0 = Instant::now();
    for i in 0..pairs as u32 {
        let k = window + 1 + i;
        h.insert(k, k).expect("reclamation keeps the pool ahead of churn");
        assert!(h.remove(k - window), "window key must be present");
    }
    let secs = t0.elapsed().as_secs_f64();

    let (probe, stats) = h.into_parts();
    let traffic = probe.traffic();
    let n_ops = (pairs * 2) as f64;
    let reclaim = list.reclaim_stats().expect("reclamation on");
    Cell {
        churn_mops: n_ops / secs / 1.0e6,
        l2_hit: traffic.l2_hit_ratio(),
        sectors_per_op: traffic.miss_sectors as f64 / n_ops,
        finger_hit: stats.finger_hit_rate().unwrap_or(0.0),
        skips_per_op: stats.skip_reads as f64 / n_ops,
        pf_issued: traffic.prefetch_txns,
        pf_fills: traffic.prefetch_fills,
        pf_useful: traffic.prefetch_useful,
        reclaimed: reclaim.zombies_reclaimed,
        high_water: list.chunks_allocated(),
        pool,
    }
}

/// Run the churn diagnostic sweep: team size x window x prefetch.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "Churn diagnostics: chunk size x window x prefetch vs the L2 model",
        &[
            "team", "window", "prefetch", "churn MOPS", "L2 hit", "sectors/op", "finger hit",
            "skims/op", "pf issued", "pf fills", "pf useful", "reclaimed", "high water", "pool",
        ],
    );
    let anchor = cfg.anchor_range();
    let windows = [
        (anchor / 32).clamp(128, 1_024),
        (anchor / 8).clamp(256, 4_096),
    ];
    for team in [TeamSize::Sixteen, TeamSize::ThirtyTwo] {
        for &window in &windows {
            for prefetch in [Prefetch::Off, Prefetch::Next] {
                let c = run_cell(cfg, team, window, prefetch);
                if prefetch.enabled() {
                    assert!(
                        c.pf_issued > 0,
                        "prefetch-on churn must issue prefetches (team {team:?}, window {window})"
                    );
                    assert!(
                        c.pf_useful <= c.pf_fills && c.pf_fills <= c.pf_issued,
                        "prefetch funnel must be monotone: {} useful <= {} fills <= {} issued",
                        c.pf_useful,
                        c.pf_fills,
                        c.pf_issued
                    );
                }
                t.row(vec![
                    team.lanes().to_string(),
                    window.to_string(),
                    if prefetch.enabled() { "next" } else { "off" }.into(),
                    mops(c.churn_mops),
                    pct(c.l2_hit),
                    format!("{:.2}", c.sectors_per_op),
                    pct(c.finger_hit),
                    format!("{:.2}", c.skips_per_op),
                    c.pf_issued.to_string(),
                    c.pf_fills.to_string(),
                    c.pf_useful.to_string(),
                    c.reclaimed.to_string(),
                    c.high_water.to_string(),
                    c.pool.to_string(),
                ]);
            }
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_diag_runs_tiny() {
        let cfg = ExpConfig::tiny(1);
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 8, "2 teams x 2 windows x 2 prefetch modes");
        for row in &t.rows {
            assert_ne!(row[11], "0", "churn must reclaim zombies ({row:?})");
        }
        // Prefetch-off rows issue nothing; prefetch-on rows must.
        for pair in t.rows.chunks(2) {
            assert_eq!(pair[0][2], "off");
            assert_eq!(pair[0][8], "0", "no prefetches when the knob is off");
            assert_eq!(pair[1][2], "next");
            assert_ne!(pair[1][8], "0", "prefetches issued when the knob is on");
        }
    }
}
