//! Access probes: the hook the data structures call on every memory access.
//!
//! The skiplist implementations are generic over `P: MemProbe`. Production
//! users instantiate [`NoProbe`], whose methods are empty and monomorphize to
//! nothing; the experiment harness instantiates [`CountingProbe`], which
//! applies the half-warp coalescing rule, probes the shared L2 model, and
//! tallies [`Traffic`].

use std::sync::Arc;

use crate::coalesce;
use crate::l2::{L2Cache, Probe as CacheProbe};
use crate::layout::WordAddr;
use crate::traffic::Traffic;

/// Named instants in a structure's protocol where an adversarial scheduler
/// may preempt, stall, or kill the acting team.
///
/// Each variant marks the moment *just before* the structure commits the
/// named transition. A fault-injection probe (see `gfsl::chaos`) can park the
/// team here for an arbitrary number of scheduling turns — simulating the
/// worst-case interleavings a GPU gives you for free — or panic to model a
/// team dying while holding locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// About to CAS a chunk's LOCK word from UNLOCKED to LOCKED.
    LockCas,
    /// About to store UNLOCKED into a held LOCK word.
    LockRelease,
    /// A split is about to publish the new chunk with one (max, next) store.
    SplitPublish,
    /// A merge is about to convert a held lock into the terminal ZOMBIE state.
    MergeZombieMark,
    /// About to swing a (max, next) field past a zombie (lazy unlink).
    NextSwing,
    /// About to install a down-pointer into an upper-level chunk.
    DownPtrInstall,
    /// A write-ahead-log append is in flight: part of the record batch may
    /// already be on disk (killing here leaves a torn tail).
    WalAppend,
    /// WAL records are fully written and the group-commit fsync is about to
    /// run (killing here loses the unsynced suffix but nothing was acked).
    WalFsync,
    /// A checkpoint page is about to be written to the temp file.
    CkptWrite,
    /// A finished checkpoint is about to be published by atomic rename.
    CkptRename,
    /// A WAL segment older than the checkpoint LSN is about to be deleted.
    WalPrune,
}

/// Software-prefetch policy knob (the memory-side sibling of the ballot
/// `BallotKernel` knob): what, if anything, a traversal prefetches ahead of
/// the walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Prefetch {
    /// No software prefetch (the pre-foresight baseline).
    #[default]
    Off,
    /// Prefetch the predicted next chunk of the walk (lateral successor
    /// during scans, the down-pointer target during descents).
    Next,
}

impl Prefetch {
    /// Whether any prefetching is enabled.
    #[inline]
    pub fn enabled(self) -> bool {
        self != Prefetch::Off
    }
}

/// Observer of simulated-device memory accesses.
///
/// `warp_*` methods describe a team-wide lockstep access (the slice holds one
/// address per lane); `lane_*` methods describe a single-thread access (the
/// M&C baseline, where each lane acts alone).
pub trait MemProbe {
    /// A team reads `addrs` (one word per lane) in lockstep.
    fn warp_read(&mut self, addrs: &[WordAddr]);
    /// A team writes through some of its lanes in lockstep.
    fn warp_write(&mut self, addrs: &[WordAddr]);
    /// A single lane reads one word.
    fn lane_read(&mut self, addr: WordAddr);
    /// A single lane writes one word.
    fn lane_write(&mut self, addr: WordAddr);
    /// An atomic RMW (CAS) on one word.
    fn atomic(&mut self, addr: WordAddr);
    /// The team issues a software prefetch covering `addrs` (one word per
    /// lane). A prefetch is a hint: it moves lines toward the cache but
    /// returns no data and stalls nothing.
    ///
    /// Default is a no-op so existing probes (and the zero-cost path) pay
    /// nothing; the counting probe overrides it to model prefetch fills in
    /// the shared L2.
    #[inline(always)]
    fn warp_prefetch(&mut self, _addrs: &[WordAddr]) {}
    /// The team is one instruction away from the named protocol transition.
    ///
    /// Default is a no-op so performance probes pay nothing; chaos probes
    /// override it to preempt/stall/kill at the most damaging instants.
    #[inline(always)]
    fn crash_point(&mut self, _point: CrashPoint) {}
    /// The team survived a contained crash and will keep issuing accesses.
    ///
    /// A probe that kills a team at a [`crash_point`](Self::crash_point)
    /// may also deregister it from its scheduler (the chaos turnstile
    /// retires the participant so peers stop waiting on it during the
    /// unwind). A containment layer that *catches* the kill and keeps the
    /// same thread running calls this from the catch site; scheduling
    /// probes re-admit the participant here, and every other probe keeps
    /// the free default.
    #[inline(always)]
    fn crash_recovered(&mut self) {}
}

/// The zero-cost probe: all methods are empty and inline away.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl MemProbe for NoProbe {
    #[inline(always)]
    fn warp_read(&mut self, _: &[WordAddr]) {}
    #[inline(always)]
    fn warp_write(&mut self, _: &[WordAddr]) {}
    #[inline(always)]
    fn lane_read(&mut self, _: WordAddr) {}
    #[inline(always)]
    fn lane_write(&mut self, _: WordAddr) {}
    #[inline(always)]
    fn atomic(&mut self, _: WordAddr) {}
}

/// The instrumenting probe: coalescing + shared L2 + traffic totals.
///
/// One `CountingProbe` per worker thread; all probes share one [`L2Cache`]
/// (the L2 is a device-wide resource). Call [`CountingProbe::traffic`] after
/// the run and merge across workers.
pub struct CountingProbe {
    l2: Arc<L2Cache>,
    traffic: Traffic,
}

impl CountingProbe {
    /// New probe sharing the given L2 model.
    pub fn new(l2: Arc<L2Cache>) -> CountingProbe {
        CountingProbe {
            l2,
            traffic: Traffic::new(),
        }
    }

    /// Counter totals so far.
    pub fn traffic(&self) -> Traffic {
        self.traffic
    }

    /// Reset counters (the shared L2 contents are left warm).
    pub fn reset(&mut self) {
        self.traffic = Traffic::new();
    }

    fn probe_line(l2: &L2Cache, traffic: &mut Traffic, line: u32, sector_mask: u8) {
        match l2.demand_access(line) {
            (CacheProbe::Hit, prefetched) => {
                traffic.l2_hits += 1;
                if prefetched {
                    traffic.prefetch_useful += 1;
                }
            }
            (CacheProbe::Miss, _) => {
                traffic.l2_misses += 1;
                traffic.miss_sectors += sector_mask.count_ones() as u64;
            }
        }
    }
}

impl MemProbe for CountingProbe {
    fn warp_read(&mut self, addrs: &[WordAddr]) {
        let l2 = &self.l2;
        let traffic = &mut self.traffic;
        let txns =
            coalesce::transactions(addrs, |line, mask| Self::probe_line(l2, traffic, line, mask));
        traffic.read_txns += txns as u64;
        traffic.words_read += addrs.len() as u64;
    }

    fn warp_write(&mut self, addrs: &[WordAddr]) {
        let l2 = &self.l2;
        let traffic = &mut self.traffic;
        let txns =
            coalesce::transactions(addrs, |line, mask| Self::probe_line(l2, traffic, line, mask));
        traffic.write_txns += txns as u64;
        traffic.words_written += addrs.len() as u64;
    }

    fn lane_read(&mut self, addr: WordAddr) {
        Self::probe_line(&self.l2, &mut self.traffic, crate::layout::line_of(addr), sector_bit(addr));
        self.traffic.read_txns += 1;
        self.traffic.words_read += 1;
    }

    fn lane_write(&mut self, addr: WordAddr) {
        Self::probe_line(&self.l2, &mut self.traffic, crate::layout::line_of(addr), sector_bit(addr));
        self.traffic.write_txns += 1;
        self.traffic.words_written += 1;
    }

    fn atomic(&mut self, addr: WordAddr) {
        // Atomics resolve in L2 on Maxwell: they probe the cache but always
        // cost a (serialized) transaction.
        Self::probe_line(&self.l2, &mut self.traffic, crate::layout::line_of(addr), sector_bit(addr));
        self.traffic.atomic_txns += 1;
    }

    fn warp_prefetch(&mut self, addrs: &[WordAddr]) {
        let l2 = &self.l2;
        let traffic = &mut self.traffic;
        coalesce::transactions(addrs, |line, _mask| {
            traffic.prefetch_txns += 1;
            if l2.prefetch(line) {
                traffic.prefetch_fills += 1;
            }
        });
    }
}

/// The single-sector mask of a lone 8-byte access.
#[inline]
fn sector_bit(addr: WordAddr) -> u8 {
    1u8 << ((addr % crate::layout::LINE_WORDS as u32) / coalesce::SECTOR_WORDS)
}

impl std::fmt::Debug for CountingProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingProbe")
            .field("traffic", &self.traffic)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> CountingProbe {
        CountingProbe::new(Arc::new(L2Cache::new(64 * 1024, 8)))
    }

    #[test]
    fn warp_read_of_aligned_chunk_counts_expected_transactions() {
        let mut p = probe();
        let addrs: Vec<WordAddr> = (64..96).collect(); // 32-entry chunk
        p.warp_read(&addrs);
        let t = p.traffic();
        assert_eq!(t.read_txns, 2);
        assert_eq!(t.words_read, 32);
        assert_eq!(t.l2_misses, 2);
        p.warp_read(&addrs);
        assert_eq!(p.traffic().l2_hits, 2, "second read hits L2");
    }

    #[test]
    fn sixteen_entry_chunk_is_one_transaction() {
        let mut p = probe();
        let addrs: Vec<WordAddr> = (32..48).collect();
        p.warp_read(&addrs);
        assert_eq!(p.traffic().read_txns, 1);
    }

    #[test]
    fn lane_accesses_count_singly() {
        let mut p = probe();
        p.lane_read(100);
        p.lane_read(101); // same line: still a txn, but L2 hit
        p.lane_write(100);
        p.atomic(5000);
        let t = p.traffic();
        assert_eq!(t.read_txns, 2);
        assert_eq!(t.write_txns, 1);
        assert_eq!(t.atomic_txns, 1);
        assert_eq!(t.l2_hits, 2);
        assert_eq!(t.l2_misses, 2);
    }

    #[test]
    fn reset_clears_counters_but_keeps_l2_warm() {
        let mut p = probe();
        p.lane_read(0);
        p.reset();
        assert_eq!(p.traffic(), Traffic::new());
        p.lane_read(0);
        assert_eq!(p.traffic().l2_hits, 1, "L2 stayed warm across reset");
    }

    #[test]
    fn no_probe_is_truly_inert() {
        let mut p = NoProbe;
        p.warp_read(&[1, 2, 3]);
        p.warp_write(&[1]);
        p.lane_read(0);
        p.lane_write(0);
        p.atomic(0);
        // Nothing to assert beyond "it compiles and runs"; NoProbe carries
        // no state by construction.
    }

    #[test]
    fn prefetch_fills_then_demand_read_is_a_useful_hit() {
        let mut p = probe();
        let addrs: Vec<WordAddr> = (64..96).collect(); // 32-entry chunk, 2 lines
        p.warp_prefetch(&addrs);
        let t = p.traffic();
        assert_eq!(t.prefetch_txns, 2);
        assert_eq!(t.prefetch_fills, 2);
        assert_eq!(t.total_txns(), 0, "prefetches are not demand traffic");
        p.warp_read(&addrs);
        let t = p.traffic();
        assert_eq!(t.l2_hits, 2, "demand read hits the prefetched lines");
        assert_eq!(t.prefetch_useful, 2);
        assert_eq!(t.l2_misses, 0);
        p.warp_prefetch(&addrs);
        let t = p.traffic();
        assert_eq!(t.prefetch_txns, 4);
        assert_eq!(t.prefetch_fills, 2, "resident lines are not re-fetched");
    }

    #[test]
    fn probes_share_one_l2() {
        let l2 = Arc::new(L2Cache::new(64 * 1024, 8));
        let mut a = CountingProbe::new(l2.clone());
        let mut b = CountingProbe::new(l2);
        a.lane_read(77);
        b.lane_read(77);
        assert_eq!(a.traffic().l2_misses, 1);
        assert_eq!(b.traffic().l2_hits, 1, "b sees the line a fetched");
    }
}
