//! Shared helpers for the criterion benchmark targets.
//!
//! Each bench target corresponds to one paper artifact (see DESIGN.md's
//! experiment index). Criterion measures *host-side* per-operation cost of
//! the real code paths; the modeled GPU numbers that regenerate the paper's
//! actual rows come from `cargo run -p gfsl-harness --bin repro`.

use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_workload::{Op, OpMix, Prefill, SplitMix64};
use mc_skiplist::{McParams, McSkipList};

/// Build a GFSL prefilled with `range/2` random keys (the paper's mixed-ops
/// initial condition).
pub fn prefilled_gfsl(range: u32, team: TeamSize) -> Gfsl {
    let list = Gfsl::new(GfslParams {
        team_size: team,
        pool_chunks: GfslParams::chunks_for(range as u64 * 2, team),
        ..Default::default()
    })
    .unwrap();
    {
        let mut h = list.handle();
        for k in Prefill::HalfRandom.keys(range, 7) {
            h.insert(k, k).unwrap();
        }
    }
    list
}

/// Build an M&C list prefilled the same way.
pub fn prefilled_mc(range: u32) -> McSkipList {
    let list = McSkipList::new(McParams::sized_for(range as u64 * 2)).unwrap();
    let mut h = list.handle();
    for k in Prefill::HalfRandom.keys(range, 7) {
        h.insert(k, k);
    }
    list
}

/// A repeatable mixed operation stream.
pub fn ops(mix: OpMix, range: u32, n: usize) -> Vec<Op> {
    mix.stream(0xBE7C4, range, n)
}

/// Endless uniform keys for steady-state single-op benches.
pub struct KeyStream {
    rng: SplitMix64,
    range: u32,
}

impl KeyStream {
    /// Uniform keys in `1..=range`.
    pub fn new(range: u32) -> KeyStream {
        KeyStream {
            rng: SplitMix64::new(0x5EED),
            range,
        }
    }

    /// Next key.
    #[inline]
    pub fn next_key(&mut self) -> u32 {
        self.rng.below(self.range as u64) as u32 + 1
    }
}
