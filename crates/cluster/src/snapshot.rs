//! Consistent cluster-wide snapshots: a brief all-shard fence to stamp the
//! cut, then (with mvcc on) wait-free version-pinned export walks.
//!
//! Consistency argument, both modes: the snapshot write-holds *every* shard
//! fence simultaneously (acquired in index order, the global fence order),
//! so there is an instant `T` — after the last fence is acquired and before
//! the first is released — at which no routed operation is running
//! anywhere. Every op completed before its shard's fence acquisition is
//! included; every op blocked on a fence completes after release. The
//! snapshot is therefore exactly the cluster state at `T`: a linearizable
//! cut, including across shards.
//!
//! The two modes differ in *how long* the fences stay held:
//!
//! * **Legacy (mvcc off)**: the fences are held for the eager per-shard
//!   export (a sequential pair walk over every resident key) — writers
//!   block for the whole walk.
//! * **Version-pinned (mvcc on)**: the fences are held only long enough to
//!   [`pin_version`](gfsl::Gfsl::pin_version) each shard — microseconds,
//!   independent of data volume. At `T` every shard is op-quiescent, so
//!   the per-shard pinned versions jointly name the cluster state at `T`.
//!   The fences then drop and the export walks run against the tickets,
//!   wait-free with respect to resumed writers: a writer that locks a
//!   chunk first pushes its pre-image onto the chunk's version chain, and
//!   the pinned walk resolves through the chain (see `gfsl::mvcc`).

use gfsl::{Error, Gfsl, GfslParams};

use crate::cluster::Cluster;

/// Where each shard's pairs landed inside a [`ClusterSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct ShardCut {
    /// Shard id at the cut.
    pub id: u64,
    /// Inclusive lower key bound at the cut.
    pub lo: u32,
    /// Exclusive upper key bound at the cut.
    pub hi: u32,
    /// Number of pairs this shard contributed.
    pub pairs: usize,
    /// The shard's pinned mvcc version (`0` for a legacy write-held cut —
    /// version clocks start at 1, so 0 is unambiguous).
    pub version: u64,
}

/// A consistent, point-in-time image of the whole cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// Shard-map epoch the cut was taken under.
    pub epoch: u64,
    /// Every pair in the cluster, ascending by key.
    pub pairs: Vec<(u32, u32)>,
    /// Per-shard contribution layout.
    pub cuts: Vec<ShardCut>,
}

impl ClusterSnapshot {
    /// Materialize the snapshot as a single bulk-built GFSL (the export
    /// path: a cluster collapses into one structure for offline use).
    pub fn to_gfsl(&self, params: GfslParams) -> Result<Gfsl, Error> {
        Gfsl::from_sorted_pairs(params, self.pairs.iter().copied())
    }

    /// Was this cut taken on the version-pinned (wait-free export) path?
    pub fn pinned(&self) -> bool {
        self.cuts.iter().all(|c| c.version != 0) && !self.cuts.is_empty()
    }
}

impl Cluster {
    /// Take a consistent cluster-wide snapshot (see module docs). With
    /// [`GfslParams::mvcc`] on, routed ops block only while the per-shard
    /// versions are stamped; otherwise for the duration of the export
    /// walks.
    pub fn snapshot(&self) -> ClusterSnapshot {
        // Stabilize the shard set against concurrent migrations.
        let _structural = self.reshard.lock();
        let (shards, epoch) = {
            let m = self.map.read();
            (m.shards.clone(), m.epoch)
        };
        let fences: Vec<_> = shards.iter().map(|s| s.fence.write()).collect();
        // Heal before walking: exports must not traverse quarantined
        // chunks. Rare (containment mode after an injected crash), so the
        // pinned path's brief-fence claim holds in the common case.
        for s in &shards {
            if s.list.params().contain && s.list.quarantine_depth() > 0 {
                s.list.handle().repair_quarantine();
            }
        }

        if self.params.mvcc {
            // Stamp the cut: one pin per shard while every fence is
            // write-held, so the tickets jointly name the instant `T`.
            let tickets: Vec<_> = shards
                .iter()
                .map(|s| s.list.pin_version().expect("mvcc knob is on"))
                .collect();
            drop(fences);
            // Wait-free export: writers have resumed, the pinned walks
            // resolve racing chunks through their version chains.
            let per_shard: Vec<Vec<(u32, u32)>> = shards
                .iter()
                .zip(&tickets)
                .map(|(s, t)| s.list.handle().pairs_at(t))
                .collect();
            return stitch(epoch, &shards, per_shard, |i| tickets[i].version());
        }

        let per_shard: Vec<Vec<(u32, u32)>> = shards
            .iter()
            .map(|s| s.list.export_pairs().collect())
            .collect();
        drop(fences);
        stitch(epoch, &shards, per_shard, |_| 0)
    }
}

fn stitch(
    epoch: u64,
    shards: &[std::sync::Arc<crate::shard::Shard>],
    per_shard: Vec<Vec<(u32, u32)>>,
    version: impl Fn(usize) -> u64,
) -> ClusterSnapshot {
    let mut pairs = Vec::with_capacity(per_shard.iter().map(Vec::len).sum());
    let mut cuts = Vec::with_capacity(shards.len());
    for (i, (s, p)) in shards.iter().zip(per_shard).enumerate() {
        cuts.push(ShardCut {
            id: s.id,
            lo: s.lo,
            hi: s.hi,
            pairs: p.len(),
            version: version(i),
        });
        pairs.extend(p);
    }
    debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "sorted stitch");
    ClusterSnapshot { epoch, pairs, cuts }
}
