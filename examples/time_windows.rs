//! Windowed analytics over ordered events: bulk-load a day of
//! timestamp-keyed readings, run range aggregations while live appends
//! continue, then compact.
//!
//! Exercises the ordered-structure APIs a hash table cannot offer:
//! `Gfsl::from_sorted_pairs` (split-free bulk load), `range` /
//! `for_each_in_range` (lock-free ordered scans), `upsert` (corrections),
//! and `compacted` (the paper's between-kernel-launches reclamation).
//!
//! ```text
//! cargo run --release --example time_windows
//! ```

use gfsl::{Gfsl, GfslParams};

/// Timestamps are seconds-of-day (1..=86400) scaled to leave room for
/// sub-second appends; values are sensor readings.
fn ts(second: u32, sub: u32) -> u32 {
    second * 16 + sub + 1
}

fn main() {
    // Bulk-load yesterday's readings: one per second, already sorted — no
    // splits, ideal index structure.
    let day: Vec<(u32, u32)> = (0..86_400u32)
        .map(|s| (ts(s, 0), (s * 7919) % 1000)) // pseudo readings 0..999
        .collect();
    let mut store = Gfsl::from_sorted_pairs(
        GfslParams::sized_for(200_000),
        day.iter().copied(),
    )
    .expect("sorted bulk load");
    println!("bulk-loaded {} readings; shape:", store.len());
    for lvl in store.shape().levels.iter().take(4) {
        println!(
            "  level {}: {} chunks, {} keys, mean fill {:.1}",
            lvl.level,
            lvl.live_chunks,
            lvl.keys,
            lvl.mean_fill()
        );
    }

    // Live phase: two appenders add sub-second readings to the evening
    // hours while an analyst runs windowed aggregations.
    std::thread::scope(|s| {
        let store_ref = &store;
        for t in 1..=2u32 {
            s.spawn(move || {
                let mut h = store_ref.handle();
                for i in 0..20_000u32 {
                    let second = 72_000 + (i % 14_400); // 20:00..24:00
                    h.insert(ts(second, t), i % 1000).ok();
                }
            });
        }
        s.spawn(move || {
            let mut h = store_ref.handle();
            for hour in 0..24u32 {
                let lo = ts(hour * 3_600, 0);
                let hi = ts((hour + 1) * 3_600 - 1, 15);
                let mut sum = 0u64;
                let mut n = 0u64;
                let mut max = 0u32;
                h.for_each_in_range(lo, hi, |_, v| {
                    sum += v as u64;
                    n += 1;
                    max = max.max(v);
                });
                if hour % 6 == 0 {
                    println!(
                        "  hour {hour:02}: n={n}, mean={:.1}, max={max}",
                        sum as f64 / n.max(1) as f64
                    );
                }
                assert!(n >= 3_600, "every second has at least one reading");
            }
        });
    });

    {
        // A correction comes in: overwrite one reading in place.
        let mut h = store.handle();
        let key = ts(12 * 3_600, 0);
        let old = h.upsert(key, 999_999 % 1000).expect("valid key");
        println!("corrected noon reading (was {old:?})");

        // Retention: drop the first six hours, then compact away the zombies.
        let cutoff = ts(6 * 3_600, 0);
        let victims = h.range(1, cutoff - 1);
        for (k, _) in &victims {
            h.remove(*k);
        }
        println!("expired {} readings before 06:00", victims.len());
    }

    let before = store.chunks_allocated();
    store = store.compacted().expect("compaction");
    println!(
        "compacted: {} -> {} chunks, zombie fraction now {:.3}",
        before,
        store.chunks_allocated(),
        store.shape().zombie_fraction()
    );
    store.assert_valid();
    println!("store valid; {} readings retained", store.len());
}
