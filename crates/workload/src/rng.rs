//! Deterministic RNG streams — re-exported from the shared [`gfsl_rng`]
//! crate.
//!
//! The implementation used to live here (with a second, diverging copy in
//! `gfsl-core`); both now share one home so reference vectors, seeding
//! conventions, and bug fixes cannot drift apart. Downstream crates that
//! import `gfsl_workload::rng::*` keep working unchanged.

pub use gfsl_rng::{shuffle, tower_height, Lehmer64, SplitMix64};
