//! Derive macros for the offline serde shim.
//!
//! Emits empty `impl serde::Serialize`/`impl serde::Deserialize` marker
//! blocks. Parses just enough of the item (the identifier following
//! `struct`/`enum`/`union`) to name the impl target; `#[serde(...)]`
//! attributes are accepted and ignored. Generic types are not supported —
//! the workspace derives only on concrete types.

use proc_macro::{TokenStream, TokenTree};

fn item_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde shim derive: could not find struct/enum name");
}

/// Derive a no-op `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derive a no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
