//! Regression: a team that dies (panics) mid-insert while holding chunk
//! locks must be *detected* — the structure reports itself poisoned and
//! later writers fail fast with a diagnosis — instead of silently
//! deadlocking every team that needs the orphaned locks.
//!
//! The panic is injected deterministically with the chaos layer: the worker
//! is killed at its first `SplitPublish` crash point, i.e. after it locked
//! the splitting chunk AND the freshly allocated (locked-at-birth) new
//! chunk, the worst case for orphaned locks.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gfsl::chaos::{ChaosController, ChaosOptions};
use gfsl::{CrashPoint, Gfsl, GfslParams, TeamSize};

#[test]
fn panic_mid_split_poisons_instead_of_deadlocking() {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        ..Default::default()
    })
    .unwrap();

    let ctl = ChaosController::new(
        1,
        ChaosOptions {
            panic_at: Some((CrashPoint::SplitPublish, 1)),
            max_stall_turns: 0,
            ..Default::default()
        },
    );

    std::thread::scope(|s| {
        let worker = s.spawn(|| {
            let mut h = list.handle_with(ctl.probe(0));
            // The 14th insert overflows the 16-entry chunk's data array and
            // triggers the first split.
            for k in 1..=100u32 {
                let _ = h.insert(k, k);
            }
        });
        assert!(
            worker.join().is_err(),
            "worker must die at the injected crash point"
        );
    });

    // The held-lock tracker saw the unwind and poisoned the structure.
    assert!(list.is_poisoned(), "dead team went undetected");
    let report = list.poison_report().expect("poison carries a report");
    assert!(
        report.contains("chunk"),
        "report should name the orphaned chunks: {report}"
    );

    // Lock-free reads still work: keys inserted before the crash are
    // reachable (the split never published, so nothing moved).
    let mut reader = list.handle();
    for k in 1..=13u32 {
        assert!(reader.contains(k), "pre-crash key {k} must stay readable");
    }

    // A writer that needs one of the orphaned locks fails FAST with the
    // poison diagnosis (bounded wait + periodic poison check) instead of
    // spinning forever. The test completing at all is the no-deadlock
    // assertion.
    let res = catch_unwind(AssertUnwindSafe(|| {
        let mut h = list.handle();
        let _ = h.insert(500, 1);
    }));
    let err = res.expect_err("writer must abort, not complete or hang");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("poisoned"),
        "writer's panic should carry the poison diagnosis, got: {msg}"
    );

    // Full structural check: the injected crash fires *before* the split
    // publish, so every data invariant must still hold — the only legal
    // violations are the orphaned locks themselves.
    assert_crash_left_data_intact(&list, &[]);
}

/// Run the full [`Gfsl::validate`] walk on a poisoned structure and assert
/// the crash corrupted nothing: orphaned locks (`quiescent-unlocked`) are
/// always expected, and a caller whose crash point freezes a documented
/// multi-chunk window (e.g. mid-merge, where moved keys transiently exist
/// in both the dying chunk and its absorber) lists the level-scope rules
/// that window legitimately suspends. Chunk-local rules — sorted, unique,
/// packed, max fields — must hold unconditionally.
fn assert_crash_left_data_intact(list: &Gfsl, window_rules: &[&str]) {
    let violations = list.validate();
    assert!(
        !violations.is_empty(),
        "a poisoned structure must at least report its orphaned locks"
    );
    for v in &violations {
        assert!(
            v.rule == "quiescent-unlocked" || window_rules.contains(&v.rule),
            "crash may orphan locks but never corrupt data: {v}"
        );
    }
}

#[test]
fn surviving_teams_keep_running_after_peer_dies_elsewhere() {
    // A peer dying while holding locks on chunks another team never touches
    // must not stop that team: poisoning is detected at lock-wait time.
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        ..Default::default()
    })
    .unwrap();
    // Push enough keys that low and high key ranges live in distinct chunks.
    {
        let mut h = list.handle();
        for k in 1..=200u32 {
            h.insert(k * 10, k).unwrap();
        }
    }

    let ctl = ChaosController::new(
        1,
        ChaosOptions {
            // Die at the first zombie-mark: the victim is mid-merge holding
            // the bottom chunk's lock, which gets orphaned by the unwind.
            panic_at: Some((CrashPoint::MergeZombieMark, 1)),
            max_stall_turns: 0,
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        let victim = s.spawn(|| {
            let mut h = list.handle_with(ctl.probe(0));
            // Remove low keys until a merge (zombie-mark) happens.
            for k in 1..=200u32 {
                h.remove(k * 10);
            }
        });
        let _ = victim.join();
    });

    // Whether or not the merge fired (it does with these parameters), the
    // high end of the key space must stay fully operational.
    let mut h = list.handle();
    for k in 150..=200u32 {
        assert!(h.contains(k * 10) || list.is_poisoned());
    }
    assert!(h.insert(100_000, 1).unwrap_or(false) || list.is_poisoned());
    drop(h);

    // Same full-walk guarantee as above, with the merge window's two
    // legal artifacts: the crash froze the op after the copy but before
    // the zombie mark, so the moved keys transiently exist in both the
    // dying chunk and its absorber (duplicates + out-of-order min). Every
    // chunk-local rule must still hold.
    if list.is_poisoned() {
        assert_crash_left_data_intact(&list, &["level-unique-keys", "lateral-order"]);
    } else {
        list.assert_valid();
    }
}

/// The containment counterpart of the poisoning regressions: the same
/// injected crash, but with [`GfslParams::contain`] on the worker survives
/// with a typed abort, the orphaned chunks land in quarantine, and one
/// repair pass returns the structure to a state where the *full* validation
/// walk — not just the lock-scrubbed subset — passes clean.
#[test]
fn contained_crash_repairs_to_a_fully_valid_structure() {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        contain: true,
        ..Default::default()
    })
    .unwrap();
    let ctl = ChaosController::new(
        1,
        ChaosOptions {
            panic_at: Some((CrashPoint::SplitPublish, 1)),
            max_stall_turns: 0,
            ..Default::default()
        },
    );

    let crashed = std::thread::scope(|s| {
        s.spawn(|| {
            let mut h = list.handle_with(ctl.probe(0));
            let mut crashed = 0u32;
            for k in 1..=100u32 {
                match h.try_insert(k, k) {
                    Ok(_) => {}
                    Err(gfsl::Error::Aborted(_)) => crashed += 1,
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            crashed
        })
        .join()
        .expect("containment keeps the worker alive")
    });

    assert!(crashed > 0, "the injected crash must surface as a typed abort");
    assert!(!list.is_poisoned(), "containment replaces poisoning");
    assert!(list.quarantine_depth() > 0, "crashed chunks are quarantined");

    let stats = list.handle().repair_quarantine();
    assert_eq!(stats.quarantine_depth, 0, "repair drains the quarantine");
    list.assert_valid();
}
