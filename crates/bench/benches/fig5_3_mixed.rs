//! Figs. 5.2/5.3 — mixed-operation workloads across mixtures and key
//! ranges (host per-op cost of the real code paths; modeled MOPS from
//! `repro --experiment fig5_3`).

use criterion::{criterion_group, criterion_main, Criterion};
use gfsl::TeamSize;
use gfsl_bench::{ops, prefilled_gfsl, prefilled_mc};
use gfsl_workload::{Op, OpMix};

fn bench_mixed(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_3_mixed");

    // Mixture sweep at one range.
    const RANGE: u32 = 30_000;
    for mix in OpMix::MIXED {
        let stream = ops(mix, RANGE, 1 << 15);
        let list = prefilled_gfsl(RANGE, TeamSize::ThirtyTwo);
        let mut h = list.handle();
        let mut i = 0usize;
        g.bench_function(format!("gfsl32_{mix}_30K"), |b| {
            b.iter(|| {
                let op = &stream[i % stream.len()];
                i += 1;
                match *op {
                    Op::Insert(k, v) => {
                        let _ = h.insert(k, v).unwrap();
                    }
                    Op::Delete(k) => {
                        let _ = h.remove(k);
                    }
                    Op::Contains(k) => {
                        let _ = h.contains(k);
                    }
                }
            })
        });
    }

    // Range sweep at one mixture (the degradation curve), both structures.
    for range in [10_000u32, 100_000, 1_000_000] {
        let stream = ops(OpMix::C80, range, 1 << 15);
        let list = prefilled_gfsl(range, TeamSize::ThirtyTwo);
        let mut h = list.handle();
        let mut i = 0usize;
        g.bench_function(format!("gfsl32_c80_range{range}"), |b| {
            b.iter(|| {
                let op = &stream[i % stream.len()];
                i += 1;
                match *op {
                    Op::Insert(k, v) => {
                        let _ = h.insert(k, v).unwrap();
                    }
                    Op::Delete(k) => {
                        let _ = h.remove(k);
                    }
                    Op::Contains(k) => {
                        let _ = h.contains(k);
                    }
                }
            })
        });
        let mc = prefilled_mc(range);
        let mut mh = mc.handle();
        let mut i = 0usize;
        g.bench_function(format!("mc_c80_range{range}"), |b| {
            b.iter(|| {
                let op = &stream[i % stream.len()];
                i += 1;
                match *op {
                    Op::Insert(k, v) => {
                        let _ = mh.insert(k, v);
                    }
                    Op::Delete(k) => {
                        let _ = mh.remove(k);
                    }
                    Op::Contains(k) => {
                        let _ = mh.contains(k);
                    }
                }
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
