//! Deterministic fault injection for the GFSL locking protocol.
//!
//! A [`ChaosController`] is a turnstile scheduler (like
//! `gfsl_gpu_mem::Turnstile`) extended with three chaos facilities, all
//! replayable from a seed:
//!
//! * **Schedule control** — every memory access of every participating
//!   handle blocks until granted a turn; turns are granted only when all
//!   live participants are parked, so the interleaving is a pure function
//!   of the decision source, not of OS timing.
//! * **Delay injection** — at each named [`CrashPoint`] (the protocol's
//!   vulnerable windows: lock CAS, split publish, merge zombie-mark,
//!   next-pointer swing, down-pointer install) the controller draws a stall
//!   of 0..=[`ChaosOptions::max_stall_turns`] extra turns, handing peers
//!   scheduling opportunities exactly inside the window.
//! * **Panic injection** — [`ChaosOptions::panic_at`] kills a team at the
//!   n-th occurrence of a crash point, exercising the held-lock tracker's
//!   poisoning path ([`crate::Gfsl::is_poisoned`]).
//!
//! Decisions come either from a seeded RNG ([`ChaosOptions::seed`]) or from
//! an explicit byte script ([`ChaosOptions::script`]); scripts shrink well
//! under property testing. Every granted turn is folded into a running FNV
//! trace hash, so two runs with the same options are bit-identical iff
//! [`ChaosController::trace_hash`] matches — the replay check used by the
//! `stress --chaos` campaign.

use std::sync::{Arc, Condvar, Mutex};

use gfsl_gpu_mem::{CrashPoint, MemProbe, WordAddr};

use gfsl_rng::{fnv, SplitMix64};

/// Number of [`CrashPoint`] variants (for the hit-count table).
const CRASH_POINTS: usize = 11;

/// All crash points, in discriminant order: the six lock-protocol windows
/// (PR 1) followed by the five durability-path windows (`gfsl-durable`'s
/// WAL append/fsync and checkpoint write/rename/prune).
pub const ALL_CRASH_POINTS: [CrashPoint; CRASH_POINTS] = [
    CrashPoint::LockCas,
    CrashPoint::LockRelease,
    CrashPoint::SplitPublish,
    CrashPoint::MergeZombieMark,
    CrashPoint::NextSwing,
    CrashPoint::DownPtrInstall,
    CrashPoint::WalAppend,
    CrashPoint::WalFsync,
    CrashPoint::CkptWrite,
    CrashPoint::CkptRename,
    CrashPoint::WalPrune,
];

/// The lock-protocol subset of [`ALL_CRASH_POINTS`] — the windows the
/// in-process recovery soak and migration chaos campaigns can reach by
/// driving structure operations (the durability windows only fire inside
/// `gfsl-durable`'s WAL/checkpoint code).
pub const LOCK_CRASH_POINTS: [CrashPoint; 6] = [
    CrashPoint::LockCas,
    CrashPoint::LockRelease,
    CrashPoint::SplitPublish,
    CrashPoint::MergeZombieMark,
    CrashPoint::NextSwing,
    CrashPoint::DownPtrInstall,
];

/// The durability-path subset of [`ALL_CRASH_POINTS`] — what the
/// kill-restart soak iterates (the lock-protocol points are covered by the
/// in-process recovery soak instead).
pub const DURABILITY_CRASH_POINTS: [CrashPoint; 5] = [
    CrashPoint::WalAppend,
    CrashPoint::WalFsync,
    CrashPoint::CkptWrite,
    CrashPoint::CkptRename,
    CrashPoint::WalPrune,
];

/// Stable index of a crash point in [`ALL_CRASH_POINTS`].
pub fn crash_point_index(p: CrashPoint) -> usize {
    match p {
        CrashPoint::LockCas => 0,
        CrashPoint::LockRelease => 1,
        CrashPoint::SplitPublish => 2,
        CrashPoint::MergeZombieMark => 3,
        CrashPoint::NextSwing => 4,
        CrashPoint::DownPtrInstall => 5,
        CrashPoint::WalAppend => 6,
        CrashPoint::WalFsync => 7,
        CrashPoint::CkptWrite => 8,
        CrashPoint::CkptRename => 9,
        CrashPoint::WalPrune => 10,
    }
}

// Event codes folded into the trace hash. Accesses are 0..=4, the stall
// filler is 9, crash points are 16 + index.
const CODE_WARP_READ: u16 = 0;
const CODE_WARP_WRITE: u16 = 1;
const CODE_LANE_READ: u16 = 2;
const CODE_LANE_WRITE: u16 = 3;
const CODE_ATOMIC: u16 = 4;
const CODE_STALL: u16 = 9;

fn crash_code(p: CrashPoint) -> u16 {
    16 + crash_point_index(p) as u16
}

/// Where chaos decisions come from.
enum Decider {
    /// Seeded SplitMix64 stream.
    Rng(SplitMix64),
    /// Explicit byte script: each decision consumes one byte (`byte % bound`).
    /// An exhausted script degrades to a round-robin counter — NOT a
    /// constant — because always answering 0 would starve every thread but
    /// the first candidate, and a starved thread parked while holding a
    /// chunk lock livelocks the whole run. Round-robin keeps the schedule
    /// deterministic *and* grants every waiter infinitely often.
    Script {
        bytes: Vec<u8>,
        pos: usize,
        fallback: u32,
    },
}

impl Decider {
    fn draw(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        match self {
            Decider::Rng(rng) => (rng.next_u64() % u64::from(bound)) as u32,
            Decider::Script {
                bytes,
                pos,
                fallback,
            } => match bytes.get(*pos) {
                Some(&b) => {
                    *pos += 1;
                    u32::from(b) % bound
                }
                None => {
                    let v = *fallback % bound;
                    *fallback = fallback.wrapping_add(1);
                    v
                }
            },
        }
    }
}

/// Configuration for a [`ChaosController`].
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Seed for schedule and stall decisions (ignored when `script` is set).
    pub seed: u64,
    /// Explicit decision script instead of the RNG: turn selection and
    /// stall draws consume bytes in order. Deterministic and shrinkable —
    /// the property tests inject these.
    pub script: Option<Vec<u8>>,
    /// Maximum extra turns injected at a crash point (a stall of
    /// 0..=this is drawn each time one is reached).
    pub max_stall_turns: u8,
    /// Crash points where stalls apply; empty means all of them.
    pub stall_points: Vec<CrashPoint>,
    /// Kill the team that reaches the `n`-th occurrence (1-based, counted
    /// across all teams) of the crash point by panicking inside it.
    pub panic_at: Option<(CrashPoint, u64)>,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions {
            seed: 0,
            script: None,
            max_stall_turns: 3,
            stall_points: Vec::new(),
            panic_at: None,
        }
    }
}

struct ChaosState {
    waiting: Vec<bool>,
    retired: Vec<bool>,
    granted: Option<usize>,
    decider: Decider,
    max_stall_turns: u8,
    stall_mask: [bool; CRASH_POINTS],
    panic_at: Option<(CrashPoint, u64)>,
    crash_hits: [u64; CRASH_POINTS],
    /// FNV-1a over the serialized (team, event) execution order.
    trace: u64,
    steps: u64,
}

impl ChaosState {
    /// Pick a waiting live thread via the decider.
    fn choose(&mut self) -> Option<usize> {
        let candidates: Vec<usize> = self
            .waiting
            .iter()
            .enumerate()
            .filter(|&(i, &w)| w && !self.retired[i])
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            let pick = self.decider.draw(candidates.len() as u32) as usize;
            Some(candidates[pick])
        }
    }

    fn record(&mut self, id: usize, code: u16) {
        // Word-wise FNV fold (NOT byte-wise): this is the shape every chaos
        // trace hash since PR 1 was recorded with, shared via gfsl-rng so it
        // cannot drift from the replay transcripts.
        self.trace = fnv::fold_word(self.trace, id as u64);
        self.trace = fnv::fold_word(self.trace, u64::from(code));
        self.steps += 1;
    }
}

/// Shared chaos scheduler; create with [`ChaosController::new`], hand one
/// [`ChaosProbe`] per worker thread, and run ordinary GFSL operations
/// through [`crate::Gfsl::handle_with`].
pub struct ChaosController {
    state: Mutex<ChaosState>,
    cv: Condvar,
}

impl ChaosController {
    /// A controller for `threads` participants.
    pub fn new(threads: usize, opts: ChaosOptions) -> Arc<ChaosController> {
        let mut stall_mask = [opts.stall_points.is_empty(); CRASH_POINTS];
        for &p in &opts.stall_points {
            stall_mask[crash_point_index(p)] = true;
        }
        let decider = match opts.script {
            Some(bytes) => Decider::Script {
                bytes,
                pos: 0,
                fallback: 0,
            },
            None => Decider::Rng(SplitMix64::new(opts.seed)),
        };
        Arc::new(ChaosController {
            state: Mutex::new(ChaosState {
                waiting: vec![false; threads],
                retired: vec![false; threads],
                granted: None,
                decider,
                max_stall_turns: opts.max_stall_turns,
                stall_mask,
                panic_at: opts.panic_at,
                crash_hits: [0; CRASH_POINTS],
                trace: fnv::OFFSET,
                steps: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// The probe for participant `id` (each id in `0..threads` must be used
    /// by exactly one thread).
    pub fn probe(self: &Arc<ChaosController>, id: usize) -> ChaosProbe {
        ChaosProbe {
            controller: self.clone(),
            id,
        }
    }

    /// Declare participant `id` finished (no further accesses). Idempotent.
    pub fn retire(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        if st.retired[id] {
            return;
        }
        st.retired[id] = true;
        st.waiting[id] = false;
        if st.granted == Some(id) {
            st.granted = None;
        }
        self.cv.notify_all();
    }

    /// Re-admit a retired participant to the turnstile. An injected panic
    /// retires its participant on the way out (see
    /// [`ChaosOptions::panic_at`]); a thread that keeps running after its
    /// panic must be revived before its next probed access, or that access
    /// would park forever waiting for a turn that is never granted to a
    /// retired participant. The containment catch site does this
    /// automatically through [`MemProbe::crash_recovered`]; calling it
    /// again is a harmless no-op.
    pub fn revive(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        st.retired[id] = false;
        st.waiting[id] = false;
        self.cv.notify_all();
    }

    /// The run's trace hash: an FNV fold of every granted turn in execution
    /// order. Equal options (seed/script + thread behavior) ⇒ equal hash;
    /// this is the replay-determinism witness.
    pub fn trace_hash(&self) -> u64 {
        self.state.lock().unwrap().trace
    }

    /// Total turns granted.
    pub fn steps(&self) -> u64 {
        self.state.lock().unwrap().steps
    }

    /// How many times each crash point was reached.
    pub fn crash_point_hits(&self) -> Vec<(CrashPoint, u64)> {
        let st = self.state.lock().unwrap();
        ALL_CRASH_POINTS
            .iter()
            .map(|&p| (p, st.crash_hits[crash_point_index(p)]))
            .collect()
    }

    /// Block until `id` is granted a turn; returns the stall drawn for a
    /// crash-point event (0 for plain accesses).
    fn step(&self, id: usize, code: u16, point: Option<CrashPoint>) -> u32 {
        let mut st = self.state.lock().unwrap();
        // Retired-participant passthrough. A participant retired by an
        // injected panic can reach another probed access *before* its
        // containment catch site revives it (any gated access in the
        // unwind/bookkeeping path) — and `choose` never picks a retired
        // participant, so parking here would wedge the whole turnstile:
        // the retiree waits for a turn that is never granted while its
        // peers spin on the lock words it still holds. Letting the access
        // through ungated keeps the run live; it is deliberately NOT folded
        // into the trace hash — an ungated access interleaves with granted
        // turns on OS timing, so recording it would break replay
        // determinism (the retiree is simply not a schedule participant
        // until revived, like the validation walk at quiescence).
        if st.retired[id] {
            return 0;
        }
        st.waiting[id] = true;
        loop {
            if st.granted == Some(id) {
                st.granted = None;
                st.waiting[id] = false;
                st.record(id, code);
                let mut stall = 0;
                if let Some(p) = point {
                    let idx = crash_point_index(p);
                    st.crash_hits[idx] += 1;
                    if let Some((pp, n)) = st.panic_at {
                        if pp == p && st.crash_hits[idx] == n {
                            // Kill this team *inside* the protocol window.
                            // Retire first and release the controller lock so
                            // peers keep being scheduled; the unwind then
                            // trips the held-lock tracker, poisoning the
                            // structure.
                            st.retired[id] = true;
                            self.cv.notify_all();
                            drop(st);
                            panic!(
                                "chaos: injected panic at {p:?} (occurrence {n}) in team {id}"
                            );
                        }
                    }
                    if st.stall_mask[idx] && st.max_stall_turns > 0 {
                        let bound = u32::from(st.max_stall_turns) + 1;
                        stall = st.decider.draw(bound);
                    }
                }
                self.cv.notify_all();
                return stall;
            }
            if st.granted.is_none() {
                let live = st.retired.iter().filter(|&&r| !r).count();
                let parked = st
                    .waiting
                    .iter()
                    .zip(&st.retired)
                    .filter(|&(&w, &r)| w && !r)
                    .count();
                if parked == live {
                    if let Some(next) = st.choose() {
                        st.granted = Some(next);
                        self.cv.notify_all();
                        if next == id {
                            continue;
                        }
                    }
                }
            }
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// A [`MemProbe`] that routes every access — and every [`CrashPoint`] —
/// through its [`ChaosController`]. Dropping the probe retires the
/// participant.
pub struct ChaosProbe {
    controller: Arc<ChaosController>,
    id: usize,
}

impl ChaosProbe {
    /// Retire this participant early (dropping the probe also retires it).
    pub fn retire(&self) {
        self.controller.retire(self.id);
    }
}

impl Drop for ChaosProbe {
    fn drop(&mut self) {
        self.retire();
    }
}

impl MemProbe for ChaosProbe {
    fn warp_read(&mut self, _: &[WordAddr]) {
        self.controller.step(self.id, CODE_WARP_READ, None);
    }
    fn warp_write(&mut self, _: &[WordAddr]) {
        self.controller.step(self.id, CODE_WARP_WRITE, None);
    }
    fn lane_read(&mut self, _: WordAddr) {
        self.controller.step(self.id, CODE_LANE_READ, None);
    }
    fn lane_write(&mut self, _: WordAddr) {
        self.controller.step(self.id, CODE_LANE_WRITE, None);
    }
    fn atomic(&mut self, _: WordAddr) {
        self.controller.step(self.id, CODE_ATOMIC, None);
    }
    fn crash_point(&mut self, point: CrashPoint) {
        let stall = self.controller.step(self.id, crash_code(point), Some(point));
        for _ in 0..stall {
            self.controller.step(self.id, CODE_STALL, None);
        }
    }
    fn crash_recovered(&mut self) {
        // The injected panic retired this participant on the way out; the
        // containment layer caught it and the thread keeps running, so
        // re-admit it before its next access parks in the turnstile.
        self.controller.revive(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GfslParams;
    use crate::skiplist::Gfsl;
    use gfsl_simt::TeamSize;

    fn chaos_run(opts: ChaosOptions) -> (u64, u64, Vec<(CrashPoint, u64)>) {
        let list = Gfsl::new(GfslParams {
            team_size: TeamSize::Sixteen,
            pool_chunks: 1 << 12,
            ..Default::default()
        })
        .unwrap();
        let ctl = ChaosController::new(2, opts);
        std::thread::scope(|s| {
            for id in 0..2 {
                let ctl = ctl.clone();
                let list = &list;
                s.spawn(move || {
                    let mut h = list.handle_with(ctl.probe(id));
                    for i in 0..40u32 {
                        let k = 1 + i * 2 + id as u32;
                        h.insert(k, k).unwrap();
                        if i % 3 == 0 {
                            h.remove(k);
                        }
                    }
                });
            }
        });
        list.assert_valid();
        (ctl.trace_hash(), ctl.steps(), ctl.crash_point_hits())
    }

    #[test]
    fn same_seed_reproduces_trace_hash() {
        let a = chaos_run(ChaosOptions {
            seed: 42,
            ..Default::default()
        });
        let b = chaos_run(ChaosOptions {
            seed: 42,
            ..Default::default()
        });
        assert_eq!(a, b, "same seed must replay the identical schedule");
        assert!(a.1 > 100, "schedule actually serialized accesses");
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        let distinct: std::collections::HashSet<u64> = (0..6u64)
            .map(|s| {
                chaos_run(ChaosOptions {
                    seed: s,
                    ..Default::default()
                })
                .0
            })
            .collect();
        assert!(distinct.len() > 2, "only {} distinct traces", distinct.len());
    }

    #[test]
    fn crash_points_are_reached() {
        let (_, _, hits) = chaos_run(ChaosOptions {
            seed: 7,
            ..Default::default()
        });
        let lock_cas = hits
            .iter()
            .find(|(p, _)| *p == CrashPoint::LockCas)
            .unwrap()
            .1;
        let publish = hits
            .iter()
            .find(|(p, _)| *p == CrashPoint::SplitPublish)
            .unwrap()
            .1;
        assert!(lock_cas > 0, "every lock acquisition passes LockCas");
        assert!(publish > 0, "enough inserts to split");
    }

    #[test]
    fn script_decider_is_deterministic_and_shrinkable() {
        let script: Vec<u8> = (0..255u8).collect();
        let a = chaos_run(ChaosOptions {
            script: Some(script.clone()),
            ..Default::default()
        });
        let b = chaos_run(ChaosOptions {
            script: Some(script),
            ..Default::default()
        });
        assert_eq!(a, b);
        // The empty script (fully shrunk) is the deterministic round-robin
        // baseline and must also replay.
        let c = chaos_run(ChaosOptions {
            script: Some(Vec::new()),
            ..Default::default()
        });
        let d = chaos_run(ChaosOptions {
            script: Some(Vec::new()),
            ..Default::default()
        });
        assert_eq!(c, d);
    }
}
