//! Long-running concurrent soak test for GFSL.
//!
//! ```text
//! stress [--seconds N] [--threads N] [--range N] [--mix i,d,c] [--team 16|32] [--seed S]
//! ```
//!
//! Runs a randomized mixed workload from many threads, periodically
//! spot-checks reader invariants, and finishes with a full structural
//! validation plus a per-key oracle check (each thread owns a disjoint key
//! class, so every thread's final state is exactly predictable).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gfsl::{Gfsl, GfslParams, TeamSize};
use gfsl_workload::SplitMix64;

struct Args {
    seconds: u64,
    threads: u32,
    range: u32,
    mix: (u32, u32, u32),
    team: TeamSize,
    seed: u64,
}

fn parse() -> Args {
    let mut a = Args {
        seconds: 10,
        threads: 4,
        range: 100_000,
        mix: (20, 20, 60),
        team: TeamSize::ThirtyTwo,
        seed: 0xD06_F00D,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag value");
        match flag.as_str() {
            "--seconds" => a.seconds = val().parse().expect("seconds"),
            "--threads" => a.threads = val().parse().expect("threads"),
            "--range" => a.range = val().parse().expect("range"),
            "--seed" => a.seed = val().parse().expect("seed"),
            "--team" => {
                a.team = match val().as_str() {
                    "16" => TeamSize::Sixteen,
                    "32" => TeamSize::ThirtyTwo,
                    other => panic!("--team must be 16 or 32, got {other}"),
                }
            }
            "--mix" => {
                let v = val();
                let parts: Vec<u32> = v.split(',').map(|p| p.parse().expect("mix")).collect();
                assert_eq!(parts.len(), 3, "--mix i,d,c");
                assert_eq!(parts.iter().sum::<u32>(), 100, "mix must sum to 100");
                a.mix = (parts[0], parts[1], parts[2]);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

fn main() -> ExitCode {
    let a = parse();
    println!(
        "soak: {}s, {} threads, range {}, mix [{},{},{}], GFSL-{}",
        a.seconds,
        a.threads,
        a.range,
        a.mix.0,
        a.mix.1,
        a.mix.2,
        match a.team {
            TeamSize::Sixteen => 16,
            TeamSize::ThirtyTwo => 32,
        }
    );
    let list = Gfsl::new(GfslParams {
        team_size: a.team,
        pool_chunks: GfslParams::chunks_for(a.range as u64 * 6, a.team),
        seed: a.seed,
        ..Default::default()
    })
    .expect("construct");

    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let deadline = Instant::now() + Duration::from_secs(a.seconds);

    let finals: Vec<std::collections::BTreeMap<u32, u32>> = std::thread::scope(|s| {
        // A reader thread hammers invariant checks the whole time.
        let list_ref = &list;
        let stop_ref = &stop;
        s.spawn(move || {
            let mut h = list_ref.handle();
            let mut rng = SplitMix64::new(0xEAD);
            while !stop_ref.load(Ordering::Acquire) {
                let lo = rng.below(a.range as u64) as u32 + 1;
                let hi = (lo + 500).min(a.range);
                let window = h.range(lo, hi);
                assert!(
                    window.windows(2).all(|w| w[0].0 < w[1].0),
                    "range scan disorder"
                );
                if let Some((mk, _)) = h.min_entry() {
                    assert!((1..=a.range).contains(&mk));
                }
            }
        });

        let workers: Vec<_> = (0..a.threads)
            .map(|t| {
                let list = &list;
                let total = &total_ops;
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut rng = SplitMix64::new(a.seed ^ (t as u64) << 32);
                    let mut oracle = std::collections::BTreeMap::new();
                    let mut n = 0u64;
                    while Instant::now() < deadline {
                        for _ in 0..512 {
                            // Keys in this thread's class only.
                            let k = (rng.below((a.range / a.threads).max(1) as u64) as u32)
                                * a.threads
                                + t
                                + 1;
                            if k > a.range {
                                continue;
                            }
                            let roll = rng.below(100) as u32;
                            if roll < a.mix.0 {
                                let v = rng.next_u64() as u32;
                                if h.insert(k, v).expect("pool") {
                                    oracle.insert(k, v);
                                }
                            } else if roll < a.mix.0 + a.mix.1 {
                                assert_eq!(
                                    h.remove(k),
                                    oracle.remove(&k).is_some(),
                                    "remove {k} disagrees with oracle"
                                );
                            } else {
                                assert_eq!(
                                    h.get(k),
                                    oracle.get(&k).copied(),
                                    "get {k} disagrees with oracle"
                                );
                            }
                            n += 1;
                        }
                    }
                    total.fetch_add(n, Ordering::Relaxed);
                    oracle
                })
            })
            .collect();
        let finals = workers.into_iter().map(|w| w.join().unwrap()).collect();
        stop.store(true, Ordering::Release);
        finals
    });

    let ops = total_ops.load(Ordering::Relaxed);
    println!(
        "ran {} ops ({:.2} Mops/s host)",
        ops,
        ops as f64 / a.seconds as f64 / 1e6
    );

    // Final oracle check: the union of per-thread maps must equal the
    // structure exactly.
    let mut expect: Vec<(u32, u32)> = finals.into_iter().flatten().collect();
    expect.sort_unstable();
    let got = list.pairs();
    if got != expect {
        eprintln!(
            "FINAL STATE MISMATCH: structure has {} pairs, oracle {}",
            got.len(),
            expect.len()
        );
        return ExitCode::FAILURE;
    }
    let violations = list.validate();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("INVARIANT VIOLATION: {v}");
        }
        return ExitCode::FAILURE;
    }
    let shape = list.shape();
    println!(
        "final: {} keys, height {}, {} chunks ({:.1}% zombies), mean fill {:.1}",
        shape.len(),
        list.height(),
        shape.chunks_allocated,
        shape.zombie_fraction() * 100.0,
        shape.levels[0].mean_fill(),
    );
    println!("soak PASSED");
    ExitCode::SUCCESS
}
