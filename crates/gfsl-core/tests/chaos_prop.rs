//! Property tests: split/merge invariants under *scripted* chaos schedules.
//!
//! Each case drives two concurrent workers through a byte-script schedule:
//! every simulated memory access and crash point is a scheduling decision
//! consumed from the script (round-robin once exhausted), with stall
//! injection enabled at every crash point. Shrinking the script shrinks
//! the *schedule*, so a failing interleaving minimizes to the shortest
//! byte prefix that still breaks an invariant.
//!
//! Workers own disjoint key classes (even/odd), so despite full chunk-level
//! contention every insert/remove return value has an exact per-thread
//! oracle, and the final membership is the union of the two oracles.

use std::collections::BTreeSet;

use gfsl::chaos::{ChaosController, ChaosOptions};
use gfsl::{Gfsl, GfslParams, TeamSize};
use proptest::prelude::*;

/// The workload: enough inserts per class to force several splits in a
/// 14-data-entry chunk format, then enough removes to force merges.
const KEYS_PER_CLASS: u32 = 40;

fn run_scripted(script: Vec<u8>, stall_turns: u8) -> Result<(), TestCaseError> {
    let list = Gfsl::new(GfslParams {
        team_size: TeamSize::Sixteen,
        pool_chunks: 1 << 12,
        ..Default::default()
    })
    .expect("params valid");
    let ctl = ChaosController::new(
        2,
        ChaosOptions {
            script: Some(script),
            max_stall_turns: stall_turns,
            ..Default::default()
        },
    );

    let finals: Vec<BTreeSet<u32>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..2u32)
            .map(|t| {
                let list = &list;
                let ctl = &ctl;
                s.spawn(move || {
                    let mut h = list.handle_with(ctl.probe(t as usize));
                    let mut reference = BTreeSet::new();
                    // Insert this class's keys (interleaved with the peer's
                    // into the same chunks), then remove all but every 4th:
                    // the shrink forces merges right where splits happened.
                    for i in 0..KEYS_PER_CLASS {
                        let k = i * 2 + t + 1;
                        assert_eq!(
                            h.insert(k, k * 10).expect("pool"),
                            reference.insert(k),
                            "insert {k}"
                        );
                    }
                    for i in 0..KEYS_PER_CLASS {
                        if i % 4 == 0 {
                            continue;
                        }
                        let k = i * 2 + t + 1;
                        assert_eq!(h.remove(k), reference.remove(&k), "remove {k}");
                    }
                    reference
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker survived the schedule"))
            .collect()
    });

    // Quiescence: structure must be fully valid...
    let violations = list.validate();
    prop_assert!(
        violations.is_empty(),
        "invariant violations under script: {violations:?}"
    );
    // ...and membership must equal the union of the disjoint oracles.
    let got: BTreeSet<u32> = list.keys().into_iter().collect();
    let expect: BTreeSet<u32> = finals.into_iter().flatten().collect();
    prop_assert_eq!(got, expect);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Arbitrary byte scripts steer the all-parked scheduler through
    /// different interleavings of two contending workers; every schedule
    /// must preserve every structural invariant and the exact per-class
    /// membership oracle.
    #[test]
    fn scripted_schedules_preserve_split_merge_invariants(
        script in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        run_scripted(script, 2)?;
    }

    /// Same property with aggressive stalls (up to 5 extra turns handed to
    /// peers at every crash point): maximizes time spent inside the split
    /// publish / merge zombie-mark / pointer-swing windows.
    #[test]
    fn long_stalls_in_crash_windows_are_harmless(
        script in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        run_scripted(script, 5)?;
    }
}
