//! `gfsl-walctl`: read-only inspection of GFSL durability artifacts.
//!
//! ```text
//! gfsl-walctl dump <wal-dir>      dump every segment record with LSN/CRC status
//! gfsl-walctl verify <ckpt-dir>   verify every checkpoint manifest + data pages
//! gfsl-walctl status <root-dir>   one-line summary of <root>/wal and <root>/ckpt
//! ```
//!
//! Unlike recovery, `dump` never repairs: a torn tail is *reported*, not
//! truncated, so the tool is safe to point at a live or post-mortem
//! directory.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use gfsl_durable::ckpt::{self, PAGE_BYTES};
use gfsl_durable::wal::{
    decode_record, list_segments, RECORD_BYTES, SEG_HEADER_BYTES, WAL_MAGIC,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, dir) = match (args.get(1), args.get(2)) {
        (Some(c), Some(d)) => (c.as_str(), Path::new(d)),
        _ => {
            eprintln!("usage: gfsl-walctl <dump|verify|status> <dir>");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "dump" => dump_wal(dir),
        "verify" => verify_ckpt(dir),
        "status" => status(dir),
        other => {
            eprintln!("unknown command {other:?}; try dump, verify, or status");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(clean) if clean => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("gfsl-walctl: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Dump every record of every segment. Returns whether all validated.
fn dump_wal(dir: &Path) -> std::io::Result<bool> {
    let segs = list_segments(dir)?;
    if segs.is_empty() {
        println!("no WAL segments under {}", dir.display());
        return Ok(true);
    }
    let mut clean = true;
    for (seq, path) in segs {
        let bytes = fs::read(&path)?;
        print!("segment {seq:#x} ({}, {} bytes): ", path.display(), bytes.len());
        if bytes.len() < SEG_HEADER_BYTES {
            println!("TORN HEADER ({} of {SEG_HEADER_BYTES} bytes)", bytes.len());
            clean = false;
            continue;
        }
        if bytes[0..8] != WAL_MAGIC {
            println!("BAD MAGIC");
            clean = false;
            continue;
        }
        let base = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        println!("base_lsn {base}");
        let body = &bytes[SEG_HEADER_BYTES..];
        let mut offset = 0;
        while offset < body.len() {
            let frame = &body[offset..body.len().min(offset + RECORD_BYTES)];
            let expect = base + (offset / RECORD_BYTES) as u64;
            match decode_record(frame) {
                Some(r) if r.lsn == expect => {
                    println!("  lsn {:>8}  CRC ok   {:?}", r.lsn, r.op)
                }
                Some(r) => {
                    println!("  lsn {:>8}  MISPLACED (expected lsn {expect})", r.lsn);
                    clean = false;
                }
                None if frame.len() < RECORD_BYTES => {
                    println!("  @byte {:>6}  PARTIAL ({} of {RECORD_BYTES} bytes) — torn tail?", SEG_HEADER_BYTES + offset, frame.len());
                    clean = false;
                }
                None => {
                    println!("  @byte {:>6}  CRC FAIL (expected lsn {expect})", SEG_HEADER_BYTES + offset);
                    clean = false;
                }
            }
            offset += RECORD_BYTES;
        }
    }
    Ok(clean)
}

/// Verify every published checkpoint end to end. Returns whether all pass.
fn verify_ckpt(dir: &Path) -> std::io::Result<bool> {
    let seqs = ckpt::list_checkpoints(dir)?;
    if seqs.is_empty() {
        println!("no checkpoint manifests under {}", dir.display());
        return Ok(true);
    }
    let mut clean = true;
    for seq in seqs {
        match ckpt::try_load(dir, seq) {
            Ok(loaded) => {
                let m = &loaded.manifest;
                println!(
                    "checkpoint {seq}: OK — epoch {}, {} pairs / {} pages, lane cuts {:?}, {} shards",
                    m.epoch,
                    m.n_pairs,
                    m.n_pages,
                    m.lane_cuts,
                    m.shard_bounds.len()
                );
            }
            Err(why) => {
                println!("checkpoint {seq}: FAIL — {why}");
                clean = false;
            }
        }
    }
    Ok(clean)
}

/// One-line summary of a durable root (engine layout `<root>/{wal,ckpt}`
/// or cluster layout `<root>/wal/lane-*`).
fn status(root: &Path) -> std::io::Result<bool> {
    let mut clean = true;
    let wal_root = root.join("wal");
    let mut lane_dirs: Vec<_> = match fs::read_dir(&wal_root) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("lane-"))
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    lane_dirs.sort();
    if lane_dirs.is_empty() {
        lane_dirs.push(wal_root);
    }
    for lane in &lane_dirs {
        let segs = list_segments(lane)?;
        let mut records = 0u64;
        let mut bad_frames = 0u64;
        for (seq, path) in &segs {
            let bytes = fs::read(path)?;
            if bytes.len() < SEG_HEADER_BYTES || bytes[0..8] != WAL_MAGIC {
                println!("{}: segment {seq:#x} has a damaged header", lane.display());
                clean = false;
                continue;
            }
            let base = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
            let body = &bytes[SEG_HEADER_BYTES..];
            let mut offset = 0;
            while offset < body.len() {
                let frame = &body[offset..body.len().min(offset + RECORD_BYTES)];
                let expect = base + (offset / RECORD_BYTES) as u64;
                match decode_record(frame) {
                    Some(r) if r.lsn == expect => records += 1,
                    _ => bad_frames += 1,
                }
                offset += RECORD_BYTES;
            }
        }
        if bad_frames > 0 {
            println!(
                "{}: {} segments, {records} valid records, {bad_frames} BAD frames (run dump)",
                lane.display(),
                segs.len()
            );
            clean = false;
        } else {
            println!(
                "{}: {} segments, {records} records",
                lane.display(),
                segs.len()
            );
        }
    }
    let ckpt_dir = root.join("ckpt");
    for seq in ckpt::list_checkpoints(&ckpt_dir)? {
        match ckpt::try_load(&ckpt_dir, seq) {
            Ok(l) => println!(
                "checkpoint {seq}: valid, {} pairs ({} bytes/page)",
                l.manifest.n_pairs, PAGE_BYTES
            ),
            Err(why) => {
                println!("checkpoint {seq}: INVALID — {why}");
                clean = false;
            }
        }
    }
    Ok(clean)
}
